// Ablation (paper §VII): the hybrid strategy -- "first, we launch an edge
// service via Docker to respond faster to the initial request; then, we
// deploy the same service to Kubernetes for future requests. This way, we
// can have both fast initial response (Docker) and automated cluster
// management (Kubernetes)."
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

struct HybridResult {
    double first_response_ms = 0;   ///< served by Docker
    double k8s_ready_s = 0;         ///< managed instance available
};

HybridResult run_hybrid(std::uint64_t seed) {
    using namespace tedge;
    testbed::C3Options c3;
    c3.seed = seed;
    c3.controller.scale_down_idle = false;
    auto testbed = build_c3(c3); // both clusters on the EGS
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    const auto& nginx = testbed::service_by_key("nginx");
    const auto* annotated = platform.service_registry().lookup(nginx.address);

    // Pre-pull on both clusters (cached case, as in fig. 11).
    int pulls = 2;
    for (auto* cluster : platform.clusters()) {
        cluster->ensure_image(annotated->spec,
                              [&](bool ok, const container::PullTiming&) {
                                  if (!ok) throw std::runtime_error("pull failed");
                                  --pulls;
                              });
    }
    bench::drain_phase(platform.simulation(), [&] { return pulls == 0; });

    HybridResult result;
    const sim::SimTime t0 = platform.simulation().now();

    // Hybrid: deploy on Docker (fast first response) and Kubernetes
    // (managed, for future requests) simultaneously.
    bool docker_ready = false;
    bool k8s_ready = false;
    platform.deployment_engine().ensure(
        *testbed->docker, annotated->spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) { docker_ready = ok; });
    platform.deployment_engine().ensure(
        *testbed->k8s, annotated->spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) {
            k8s_ready = ok;
        });

    bool responded = false;
    platform.http_request(testbed->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              if (!r.ok) throw std::runtime_error(r.error);
                              result.first_response_ms = r.time_total.ms();
                              responded = true;
                          });
    bench::drain_phase(platform.simulation(), [&] {
        return (responded && k8s_ready && docker_ready) ||
               platform.simulation().now() - t0 > sim::seconds(120);
    });
    if (!responded || !k8s_ready || !docker_ready) {
        throw std::runtime_error("hybrid run timed out");
    }
    // k8s readiness time: from the deployment engine's record.
    for (const auto& record : platform.deployment_engine().records()) {
        if (record.cluster == "egs-k8s" && record.ok) {
            result.k8s_ready_s = (record.finished - t0).seconds();
        }
    }
    return result;
}

void print_hybrid() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Ablation -- hybrid Docker-first + Kubernetes-later (paper §VII)",
        "fast initial response via Docker (< 1 s) while Kubernetes brings up "
        "the managed instance (~3 s) for future requests");

    const auto hybrid = run_hybrid(17);

    TextTable table({"Metric", "value", "paper"});
    table.add_row({"first response (Docker path)",
                   TextTable::num(hybrid.first_response_ms, 0) + " ms", "< 1 s"});
    table.add_row({"managed K8s instance ready after",
                   TextTable::num(hybrid.k8s_ready_s, 2) + " s", "~ 3 s"});
    std::cout << table.str();
}

void BM_HybridDeploy(benchmark::State& state) {
    std::uint64_t seed = 80;
    for (auto _ : state) {
        auto r = run_hybrid(seed++);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_HybridDeploy)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_hybrid();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
