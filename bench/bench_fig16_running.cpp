// Fig. 16: total time (median) for client requests when the instance is
// already running -- about a millisecond for the web services on either
// cluster, significantly longer for ResNet (inference + 83 KiB upload).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig16() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 16 -- request time with the instance already running",
        "~1 ms for short responses; ResNet significantly longer; no notable "
        "difference between Docker and Kubernetes");

    TextTable table({"Service", "Cluster", "median [ms]", "p25 [ms]", "p75 [ms]",
                     "paper"});
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        for (const auto& cluster : {"docker", "k8s"}) {
            const auto samples = tedge::bench::measure_warm_requests(cluster,
                                                                     service_key);
            table.add_row({tedge::testbed::service_by_key(service_key).display_name,
                           cluster, TextTable::num(samples.median(), 2),
                           TextTable::num(samples.p25(), 2),
                           TextTable::num(samples.p75(), 2),
                           std::string(service_key) == "resnet" ? "much longer"
                                                                : "~ 1 ms"});
        }
    }
    std::cout << table.str();
}

void BM_WarmRequestDockerAsm(benchmark::State& state) {
    std::uint64_t seed = 40;
    for (auto _ : state) {
        auto samples = tedge::bench::measure_warm_requests("docker", "asm", 10, seed++);
        benchmark::DoNotOptimize(samples);
    }
}
BENCHMARK(BM_WarmRequestDockerAsm)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig16();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
