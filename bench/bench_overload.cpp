// Overload study for the resource model (DESIGN §10): four capacity-limited
// docker clusters, aggregate demand at 2x their combined CPU and memory
// budget, swept across the placement schedulers.
//
// 36 services cycle through three request sizes (250m/64Mi, 500m/128Mi,
// 750m/192Mi -- one full cycle is 1500m/384Mi), so exactly half of them fit
// into the 4 x 2250m/576Mi clusters under perfect packing. The interesting
// question is how close each scheduler gets and what the overflow costs:
//
//   * least_loaded        -- capacity-blind instance counting; rejected
//                            deployments burn a retry and fall to the cloud
//   * utilization_balancing -- worst-fit by ledger pressure; skips full
//                            clusters instead of bouncing off them
//   * deadline_slo        -- tightest-fit packing against a latency budget
//
// Per scheduler the bench reports admitted / rejected deployments, deploy
// retries, cloud fallbacks, and request-latency percentiles (p50/p95/p99
// over every completed request, cold starts and cloud round-trips included).
//
// Two hard gates (CI runs the --quick smoke and trusts the exit code):
//   1. Ledger invariant: per-cluster used and peak reservations never exceed
//      the configured capacity, in either dimension.
//   2. utilization_balancing must admit strictly more services than the
//      capacity-blind least_loaded baseline -- the reason the scheduler
//      exists. Equal admissions means pressure-aware placement regressed.
//
// Flags: --quick (fewer follow-up requests: CI smoke), --out <file>.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/edge_platform.hpp"
#include "orchestrator/resources.hpp"
#include "sdn/scheduler.hpp"
#include "workload/metrics.hpp"

namespace tedge::bench {
namespace {

constexpr std::uint32_t kClusters = 4;
constexpr std::uint32_t kServices = 36;
/// Per-cluster budget: 1.5 request cycles of CPU and memory, so the fleet
/// holds exactly half the registered demand under perfect packing.
constexpr std::uint64_t kClusterCpu = 2250;
const std::uint64_t kClusterMem = static_cast<std::uint64_t>(sim::mib(576));

struct RequestShape {
    const char* cpu;
    const char* memory;
};
/// One cycle sums to 1500m / 384Mi; 36 services = 12 cycles = 2x capacity.
constexpr RequestShape kShapes[] = {
    {"250m", "64Mi"},
    {"500m", "128Mi"},
    {"750m", "192Mi"},
};

struct ClusterSnapshot {
    std::string name;
    orchestrator::ClusterUtilization utilization;
};

struct SchedulerResult {
    std::string scheduler;
    std::size_t admitted = 0;      ///< deployments that completed
    std::size_t rejected = 0;      ///< typed admission rejections
    std::uint64_t retries = 0;
    std::uint64_t retry_successes = 0;
    std::uint64_t cloud_fallbacks = 0;
    std::size_t requests_ok = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double peak_pressure = 0;  ///< max over clusters of peak/capacity
    bool invariant_ok = true;
    std::vector<ClusterSnapshot> clusters;
};

double percentile(const std::vector<double>& sorted_samples, double p) {
    if (sorted_samples.empty()) return 0;
    const auto index = static_cast<std::size_t>(
        p * static_cast<double>(sorted_samples.size() - 1));
    return sorted_samples[index];
}

SchedulerResult run_scheduler(const std::string& scheduler, bool quick) {
    SchedulerResult result;
    result.scheduler = scheduler;

    core::EdgePlatform platform;
    const auto client = platform.add_client("client", net::Ipv4{10, 0, 1, 1});
    std::vector<net::NodeId> hosts;
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        hosts.push_back(platform.add_edge_host(
            "edge" + std::to_string(c),
            net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(2 + c)}, 12));
    }
    platform.add_cloud();

    auto& registry = platform.add_registry({.host = "docker.io"});
    container::Image image;
    image.ref = *container::ImageRef::parse("web:1");
    image.layers = container::make_layers("web", sim::mib(10), 2);
    registry.put(image);

    container::AppProfile app;
    app.name = "web";
    app.init_median = sim::milliseconds(20);
    app.service_median = sim::microseconds(200);
    app.port = 80;
    platform.add_app_profile("web:1", app);

    orchestrator::DockerClusterConfig limited;
    limited.capacity = {.cpu_millicores = kClusterCpu,
                        .memory_bytes = kClusterMem};
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        platform.add_docker_cluster("edge" + std::to_string(c), hosts[c],
                                    limited);
    }

    std::vector<net::ServiceAddress> addresses;
    for (std::uint32_t i = 0; i < kServices; ++i) {
        const auto& shape = kShapes[i % 3];
        const net::ServiceAddress address{
            net::Ipv4{203, 0, 113, static_cast<std::uint8_t>(10 + i)}, 80};
        platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
          resources:
            requests:
              cpu: )" + std::string(shape.cpu) +
                                               R"(
              memory: )" + std::string(shape.memory) +
                                               "\n");
        addresses.push_back(address);
    }

    // Capacity must stay pinned for the whole run so the admitted count is a
    // packing statement, not a churn race: no idle scale-down, long memories.
    sdn::ControllerConfig config;
    config.scheduler = scheduler;
    config.scale_down_idle = false;
    config.flow_memory.idle_timeout = sim::seconds(900);
    config.dispatcher.switch_idle_timeout = sim::seconds(900);
    platform.start_controller(hosts[0], std::move(config));

    // First requests arrive staggered 200ms apart (the deployment wave);
    // follow-ups measure the steady state each placement bought.
    const int follow_ups = quick ? 1 : 4;
    std::size_t done = 0;
    std::size_t expected = 0;
    std::vector<double> latencies_ms;
    const auto issue = [&](const net::ServiceAddress& address,
                           sim::SimTime at) {
        ++expected;
        platform.simulation().schedule_at(at, [&, address] {
            platform.http_request(client, address, 100,
                                  [&](const net::HttpResult& r) {
                                      ++done;
                                      if (!r.ok) return;
                                      ++result.requests_ok;
                                      latencies_ms.push_back(
                                          r.time_total.ms());
                                  });
        });
    };
    for (std::uint32_t i = 0; i < kServices; ++i) {
        const auto first = sim::milliseconds(200) * static_cast<std::int64_t>(i);
        issue(addresses[i], first);
        for (int f = 1; f <= follow_ups; ++f) {
            issue(addresses[i],
                  first + sim::seconds(2) * static_cast<std::int64_t>(f));
        }
    }
    drain_phase(platform.simulation(), [&] { return done == expected; });

    for (const auto& record : platform.deployment_engine().records()) {
        if (record.ok) {
            ++result.admitted;
        } else if (record.admission !=
                   orchestrator::AdmissionReason::kAdmitted) {
            ++result.rejected;
        }
    }
    const auto& stats = platform.controller().dispatcher().stats();
    result.retries = stats.deploy_retries;
    result.retry_successes = stats.retry_successes;
    result.cloud_fallbacks = stats.cloud_fallbacks;

    std::sort(latencies_ms.begin(), latencies_ms.end());
    result.p50_ms = percentile(latencies_ms, 0.50);
    result.p95_ms = percentile(latencies_ms, 0.95);
    result.p99_ms = percentile(latencies_ms, 0.99);

    // Ledger invariant: reservations (current and high-water) never exceed
    // the configured capacity on any cluster, in either dimension.
    for (const auto* cluster : platform.clusters()) {
        const auto utilization = cluster->utilization();
        const auto over = [](std::uint64_t used, std::uint64_t cap) {
            return cap != 0 && used > cap;
        };
        if (over(utilization.used.cpu_millicores,
                 utilization.capacity.cpu_millicores) ||
            over(utilization.peak_used.cpu_millicores,
                 utilization.capacity.cpu_millicores) ||
            over(utilization.used.memory_bytes,
                 utilization.capacity.memory_bytes) ||
            over(utilization.peak_used.memory_bytes,
                 utilization.capacity.memory_bytes)) {
            result.invariant_ok = false;
        }
        if (utilization.capacity.cpu_millicores != 0) {
            const double peak =
                static_cast<double>(utilization.peak_used.cpu_millicores) /
                static_cast<double>(utilization.capacity.cpu_millicores);
            result.peak_pressure = std::max(result.peak_pressure, peak);
        }
        result.clusters.push_back({cluster->name(), utilization});
    }
    return result;
}

std::string json_scheduler(const SchedulerResult& r) {
    std::ostringstream out;
    out << "    {\"scheduler\": \"" << r.scheduler
        << "\", \"admitted\": " << r.admitted
        << ", \"rejected\": " << r.rejected
        << ", \"deploy_retries\": " << r.retries
        << ", \"retry_successes\": " << r.retry_successes
        << ", \"cloud_fallbacks\": " << r.cloud_fallbacks
        << ", \"requests_ok\": " << r.requests_ok
        << ", \"p50_ms\": " << workload::TextTable::num(r.p50_ms, 3)
        << ", \"p95_ms\": " << workload::TextTable::num(r.p95_ms, 3)
        << ", \"p99_ms\": " << workload::TextTable::num(r.p99_ms, 3)
        << ", \"peak_pressure\": "
        << workload::TextTable::num(r.peak_pressure, 3)
        << ", \"invariant_ok\": " << (r.invariant_ok ? "true" : "false")
        << "}";
    return out.str();
}

} // namespace
} // namespace tedge::bench

int main(int argc, char** argv) {
    using namespace tedge;
    using namespace tedge::bench;
    using workload::TextTable;

    bool quick = false;
    std::string out_path = "BENCH_overload.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_overload [--quick] [--out <file>]\n";
            return 2;
        }
    }

    print_header("overload",
                 "finite-capacity clusters at 2x aggregate demand: admission, "
                 "rejection, and latency per scheduler");
    std::cout << kClusters << " clusters x "
              << orchestrator::format_cpu_millicores(kClusterCpu) << " / "
              << orchestrator::format_memory_bytes(kClusterMem) << ", "
              << kServices
              << " services cycling 250m/64Mi, 500m/128Mi, 750m/192Mi "
                 "(demand = 2.0x capacity in both dimensions)\n\n";

    const std::vector<std::string> schedulers = {
        sdn::kLeastLoadedScheduler,
        sdn::kUtilizationBalancingScheduler,
        sdn::kDeadlineSloScheduler,
    };
    std::vector<SchedulerResult> results;
    for (const auto& scheduler : schedulers) {
        results.push_back(run_scheduler(scheduler, quick));
    }

    TextTable table({"scheduler", "admitted", "rejected", "retries", "cloud",
                     "p50 [ms]", "p95 [ms]", "p99 [ms]", "peak press"});
    for (const auto& r : results) {
        table.add_row({r.scheduler, std::to_string(r.admitted),
                       std::to_string(r.rejected), std::to_string(r.retries),
                       std::to_string(r.cloud_fallbacks),
                       TextTable::num(r.p50_ms, 2), TextTable::num(r.p95_ms, 2),
                       TextTable::num(r.p99_ms, 2),
                       TextTable::num(r.peak_pressure, 2)});
    }
    std::cout << table.str() << "\n";

    TextTable per_cluster({"scheduler", "cluster", "used cpu", "peak cpu",
                           "used mem", "peak mem", "admits", "rejects"});
    for (const auto& r : results) {
        for (const auto& c : r.clusters) {
            per_cluster.add_row(
                {r.scheduler, c.name,
                 orchestrator::format_cpu_millicores(
                     c.utilization.used.cpu_millicores),
                 orchestrator::format_cpu_millicores(
                     c.utilization.peak_used.cpu_millicores),
                 orchestrator::format_memory_bytes(
                     c.utilization.used.memory_bytes),
                 orchestrator::format_memory_bytes(
                     c.utilization.peak_used.memory_bytes),
                 std::to_string(c.utilization.admissions),
                 std::to_string(c.utilization.rejections)});
        }
    }
    std::cout << per_cluster.str() << "\n";

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"bench_overload\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"clusters\": " << kClusters
        << ",\n  \"cluster_cpu_millicores\": " << kClusterCpu
        << ",\n  \"cluster_memory_bytes\": " << kClusterMem
        << ",\n  \"services\": " << kServices << ",\n  \"schedulers\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        out << json_scheduler(results[i])
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    bool failed = false;
    for (const auto& r : results) {
        if (!r.invariant_ok) {
            std::cerr << "LEDGER INVARIANT: " << r.scheduler
                      << " reserved past a cluster's capacity\n";
            failed = true;
        }
    }
    const auto by_name = [&](const char* name) -> const SchedulerResult& {
        for (const auto& r : results) {
            if (r.scheduler == name) return r;
        }
        throw std::logic_error("scheduler missing from sweep");
    };
    const auto& blind = by_name(sdn::kLeastLoadedScheduler);
    const auto& aware = by_name(sdn::kUtilizationBalancingScheduler);
    if (aware.admitted <= blind.admitted) {
        std::cerr << "OVERLOAD GATE: utilization_balancing admitted "
                  << aware.admitted << " <= least_loaded's " << blind.admitted
                  << " -- pressure-aware placement buys nothing\n";
        failed = true;
    }
    return failed ? 1 : 0;
}
