// Scale sweep for the control plane (ROADMAP "scale-out" milestone).
//
// Sweeps {10k, 100k, 1M} concurrent flows x {1, 8, 64} services through the
// packet-in hot path (FlowMemory recall-miss -> install) driven by the event
// kernel via a lazily-pulled PoissonStream, and reports per point:
//
//   * events/s           -- kernel + install throughput during the fill
//   * install latency    -- wall-clock packet-in -> flow-install, sampled
//                           every 64th event (p50/p95/p99)
//   * lookup / idle ns   -- flows_for_service() and the per-(service,
//                           cluster) idle check once the table is full
//   * peak RSS           -- VmHWM, measured in a forked child per point so
//                           points don't inherit each other's high-water mark
//
// Two honesty checks against the pre-change implementation are included:
// a 100k-flow microbench of flows_for_service()/idle-check against the old
// std::map + linear-scan structure, and a 1M-flow RSS comparison against the
// old memory shape (string-bearing map entries plus the per-event closures
// the old replay path pre-scheduled).
//
// Results are written to BENCH_scale.json (one JSON object per point, flat
// and line-oriented, so the --baseline regression gate can parse it without
// a JSON library). `--baseline <file>` exits non-zero when any point's
// events/s drops more than 20% below the baseline (the CI gate).
//
// The sweep has a shard dimension (--shards, default "1,2,8"): shards=1 is
// the serial kernel exactly as before (the legacy baseline rows), shards=N>1
// runs the sharded control plane -- N edge domains each owning a FlowMemory
// partition and its own Poisson pump, plus a central controller domain
// receiving periodic digests over the conservative lookahead link -- under
// ShardedSimulation. Shard counts > 1 sweep on the wheel backend only (the
// heap rows exist to compare queue backends, not kernels). JSON points carry
// a "shards" field; baselines written before the field existed parse as
// shards=1.
//
// The sweep has a fidelity dimension (--fidelity, default "both"): exact
// rows drive every flow through the per-packet path as before; hybrid rows
// (DESIGN §9) replay a FluidPoissonStream -- each service's first flow is an
// exact cold start, the rest arrive as per-epoch aggregate batches admitted
// via FlowMemory::admit_fluid -- so the kernel carries O(services) events
// per epoch instead of one per flow. Hybrid rows extend the sweep to 10M and
// 100M resident flows (serial kernel only; skipped under --quick) and the
// "events/s" column reads as flows per wall-clock second in both modes, so
// the hybrid/exact ratio is the control-plane speedup. When both fidelities
// sweep the 1M x 8 wheel point, the run fails unless hybrid is >= 10x exact.
//
// The sharded rows have a sync dimension (--sync, default "channel"): the
// coordinator that drives the domains -- the global barrier, the locked
// channel-clock protocol, or the lock-free channel plane (DESIGN §8). Points
// record the mode as "sync_mode" plus the per-run lane accounting -- total
// lane busy/blocked wall time, the null-message count, and the lock-free
// plane's wakeup/park/suppression/demand counters -- so the shard-scaling
// table can attribute (lack of) speedup to synchronization stalls vs lock
// contention. Baselines written before the sync dimension existed were all
// measured on the barrier design and parse as sync_mode=barrier; serial rows
// carry the same label so they keep gating across the change.
//
// Lock-free channel rows additionally sweep a grain dimension (--grain, a
// CSV of fractions of each channel's lookahead; default "0.25"): the
// null-message suppression threshold of DESIGN §8.7. Grain changes
// scheduling pressure only, never results, so every grain row produces the
// same simulation outcome; the sweep exists to price suppression (nulls and
// wakeups per point). Rows of other coordinators record grain=0, and
// baselines written before the grain dimension existed parse as grain=0.
//
// Flags: --quick (skip the 1M row and the RSS comparison: CI),
//        --backend heap|wheel|both (event-queue backend to sweep; default
//        wheel, `both` additionally prints a heap-vs-wheel table),
//        --shards <csv> (shard counts to sweep, default 1,2,8),
//        --fidelity exact|hybrid|both (default both),
//        --sync channel|channel-locked|barrier|both|all (coordinator for
//        sharded rows; default channel; both = barrier + channel),
//        --grain <csv> (lookahead fractions for lock-free channel rows,
//        default 0.25),
//        --out <file>, --baseline <file>.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "common.hpp"
#include "net/address.hpp"
#include "sdn/control_plane_shard.hpp"
#include "sdn/flow_memory.hpp"
#include "simcore/sharded_simulation.hpp"
#include "simcore/simulation.hpp"
#include "workload/metrics.hpp"
#include "workload/stream.hpp"

namespace tedge::bench {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
}

/// VmHWM (peak resident set) of the calling process, in kB; 0 if unreadable.
long peak_rss_kb() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            long kb = 0;
            std::sscanf(line.c_str(), "VmHWM: %ld", &kb);
            return kb;
        }
    }
    return 0;
}

double percentile(const std::vector<double>& sorted_samples, double p) {
    if (sorted_samples.empty()) return 0;
    const auto index = static_cast<std::size_t>(
        p * static_cast<double>(sorted_samples.size() - 1));
    return sorted_samples[index];
}

net::ServiceAddress address_for(std::uint32_t service) {
    return net::ServiceAddress{net::Ipv4{0x0a000000u + service}, 80,
                               net::Proto::kTcp};
}

constexpr std::uint32_t kClusters = 2;
constexpr sim::SimTime kIdleTimeout = sim::seconds(600);
constexpr sim::SimTime kScanPeriod = sim::seconds(5);
/// Aggregation grid of the hybrid-fidelity rows (stream batches and the
/// FlowMemory lazy-advance epochs share it).
constexpr sim::SimTime kEpochPeriod = sim::milliseconds(100);
/// Site-to-controller access latency: the partition's minimum cut-link
/// latency, i.e. the conservative lookahead of the sharded sweep points.
constexpr sim::SimTime kAccessLatency = sim::milliseconds(25);
/// How often each edge shard reports a digest to the controller domain.
constexpr sim::SimTime kDigestPeriod = sim::seconds(1);

// --------------------------------------------------------------- fork glue

/// Run `fn` in a forked child and ship its POD result back over a pipe --
/// each sweep point gets a pristine address space so VmHWM is per-point.
template <typename R>
std::optional<R> run_forked(const std::function<R()>& fn) {
    int fds[2];
    if (pipe(fds) != 0) return std::nullopt;
    const pid_t pid = fork();
    if (pid < 0) return std::nullopt;
    if (pid == 0) {
        close(fds[0]);
        try {
            R result = fn();
            const auto written = write(fds[1], &result, sizeof result);
            _exit(written == sizeof result ? 0 : 1);
        } catch (const std::exception& e) {
            // The parent reports "child died"; say why before going.
            std::cerr << "child: " << e.what() << "\n";
            _exit(1);
        }
    }
    close(fds[1]);
    R result{};
    const auto got = read(fds[0], &result, sizeof result);
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    if (got != sizeof result) return std::nullopt; // child died (OOM, crash)
    return result;
}

// ------------------------------------------------------------- sweep point

struct SweepPoint {
    std::size_t flows = 0;
    std::uint32_t services = 0;
    sim::QueueBackend backend = sim::QueueBackend::kWheel;
    std::size_t shards = 1;  ///< 1 = serial kernel, > 1 = sharded control plane
    sdn::Fidelity fidelity = sdn::Fidelity::kExact;
    sim::SyncMode sync = sim::SyncMode::kChannel;  ///< sharded points only
    double grain = 0.25;  ///< horizon grain fraction (lock-free channel only)
};

const char* backend_str(sim::QueueBackend backend) {
    return backend == sim::QueueBackend::kHeap ? "heap" : "wheel";
}

/// Label recorded in JSON and used as the baseline key. Serial points carry
/// "barrier": they never run a coordinator, and baselines written before the
/// sync dimension existed (all of them measured on the barrier design) parse
/// with the same default, so the serial rows keep gating across the change.
const char* sync_str(const SweepPoint& point) {
    if (point.shards <= 1) return "barrier";
    switch (point.sync) {
        case sim::SyncMode::kBarrier: return "barrier";
        case sim::SyncMode::kChannelLocked: return "channel-locked";
        case sim::SyncMode::kChannel: return "channel";
    }
    return "barrier";
}

/// Grain recorded in JSON and used in the baseline key. Only the lock-free
/// channel coordinator reads Options::horizon_grain, so every other row
/// carries 0 -- which also matches how pre-grain baselines parse.
double grain_label(const SweepPoint& point) {
    if (point.shards <= 1 || point.sync != sim::SyncMode::kChannel) return 0.0;
    return point.grain;
}

/// POD result shipped from the forked child back over the pipe.
struct PointResult {
    double events_per_s = 0;
    double install_p50_ns = 0;
    double install_p95_ns = 0;
    double install_p99_ns = 0;
    double lookup_ns = 0;      ///< flows_for_service(service), averaged
    double idle_check_ns = 0;  ///< flows_for_service(service, cluster), averaged
    double expire_per_s = 0;   ///< throughput of the expiry + idle sweep
    long rss_kb = 0;
    std::uint64_t idle_notifications = 0;
    std::uint64_t peak_live_flows = 0;
    std::uint64_t sync_rounds = 0;  ///< sync rounds / windows (sharded points)
    std::uint64_t null_messages = 0;   ///< pure horizon publications (channel)
    std::uint64_t lane_busy_ns = 0;    ///< wall time lanes spent in windows
    std::uint64_t lane_blocked_ns = 0; ///< wall time lanes waited on upstreams
    std::uint32_t lane_count = 0;      ///< coordinator lanes the run used
    std::uint64_t wakeups = 0;      ///< lane gate wakeups (lock-free channel)
    std::uint64_t parks = 0;        ///< gate waits that hit the condvar path
    std::uint64_t parked_ns = 0;    ///< wall time lanes spent parked
    std::uint64_t suppressed = 0;   ///< horizon advances withheld by the grain
    std::uint64_t demands = 0;      ///< demand pulls by EIT-blocked domains
    std::uint64_t digests = 0;      ///< digests the controller received
    std::uint32_t cores_used = 1;      ///< worker threads the point could use
    std::uint32_t hw_concurrency = 0;  ///< std::thread::hardware_concurrency()
    std::uint64_t kernel_events = 0;   ///< workload events the kernel carried
    std::uint64_t events_scheduled = 0;   ///< kernel pushes over the whole run
    std::uint64_t cascade_stages = 0;     ///< wheel: buckets staged
    std::uint64_t cascade_refiled = 0;    ///< wheel: entries re-filed
    std::uint64_t cascade_max_burst = 0;  ///< wheel: largest staged bucket
};

std::uint32_t hw_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

void record_cascade(const sim::Simulation& sim, PointResult& result) {
    const auto& cascade = sim.wheel_cascade_stats();
    result.events_scheduled += sim.total_scheduled();
    result.cascade_stages += cascade.stages;
    result.cascade_refiled += cascade.refiled;
    result.cascade_max_burst =
        std::max(result.cascade_max_burst, cascade.max_stage_burst);
}

/// Fill a FlowMemory with `point.flows` live flows through the event kernel:
/// every Poisson arrival is one packet-in (recall miss -> install), pumped
/// one pending event at a time exactly like the streaming TraceRunner.
PointResult run_point_once(const SweepPoint& point) {
    PointResult result;

    sim::Simulation sim(point.backend);
    // The pump keeps at most one arrival pending and the expiry path adds one
    // daemon event per occupied deadline bucket, so a modest slab reserve is
    // enough to skip the early growth stalls without inflating the peak-RSS
    // headline the 1M point reports.
    sim.reserve_events(4096);
    sdn::FlowMemory memory(sim, {kIdleTimeout, kScanPeriod});
    memory.reserve(point.flows);
    std::uint64_t idle_events = 0;
    memory.set_idle_service_callback(
        [&](const std::string&, const std::string&) { ++idle_events; });

    std::vector<std::string> service_names(point.services);
    std::vector<net::ServiceAddress> addresses(point.services);
    for (std::uint32_t s = 0; s < point.services; ++s) {
        service_names[s] = "svc" + std::to_string(s);
        addresses[s] = address_for(s);
    }
    std::vector<std::string> cluster_names(kClusters);
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        cluster_names[c] = "edge" + std::to_string(c);
    }

    // Arrival rate chosen so the fill spans ~60 simulated seconds; the idle
    // timeout is larger, so every installed flow is still live at the end --
    // the point measures `flows` *concurrent* flows, not churn.
    workload::PoissonStream::Options stream_options;
    stream_options.services = point.services;
    stream_options.clients = 1024;
    stream_options.limit = point.flows;
    stream_options.total_rate_per_s = static_cast<double>(point.flows) / 60.0;
    stream_options.seed = 42;
    workload::PoissonStream stream(stream_options);

    std::vector<double> install_ns;
    install_ns.reserve(point.flows / 64 + 1);
    std::size_t installed = 0;
    std::optional<workload::TraceEvent> pending = stream.next();
    std::function<void()> fire = [&] {
        const workload::TraceEvent event = *pending;
        pending = stream.next();
        if (pending) {
            // Re-arm via a thin reference-capturing shim: copying `fire`
            // itself into the kernel would heap-allocate per event (its
            // closure outgrows the std::function small-object buffer).
            sim.schedule_at(pending->at, [&fire] { fire(); });
            // Software-pipeline the flow-table access: start the probe-line
            // load for the *next* packet now, so its DRAM latency overlaps
            // this packet's work instead of stalling the next recall().
            memory.prefetch(
                net::Ipv4{0xc0000000u + static_cast<std::uint32_t>(installed) + 1},
                addresses[pending->service]);
        }

        // One packet-in: distinct client ip per flow, cluster by client.
        const net::Ipv4 client_ip{0xc0000000u + static_cast<std::uint32_t>(installed)};
        const std::uint32_t cluster = event.client % kClusters;
        // Only sampled events pay for the clock reads: an unconditional
        // Clock::now() per event is ~40 ns of pure instrumentation overhead
        // on this VM, a sizeable bias in the events/s headline.
        const bool sampled = (installed % 64) == 0;
        const auto start = sampled ? Clock::now() : Clock::time_point{};
        const auto hit = memory.recall(client_ip, addresses[event.service]);
        if (!hit) {
            sdn::MemorizedFlow flow;
            flow.client_ip = client_ip;
            flow.service_address = addresses[event.service];
            flow.service_name = service_names[event.service];
            flow.instance_node = net::NodeId{event.service};
            flow.instance_port = 8000;
            flow.cluster = cluster_names[cluster];
            flow.created = sim.now();
            flow.last_used = sim.now();
            memory.memorize(flow);
        }
        if (sampled) {
            install_ns.push_back(
                std::chrono::duration<double, std::nano>(Clock::now() - start)
                    .count());
        }
        ++installed;
    };
    if (pending) sim.schedule_at(pending->at, fire);

    const auto fill_start = Clock::now();
    sim.run_while([&] { return installed < point.flows; });
    const double fill_s = elapsed_s(fill_start);
    result.events_per_s = static_cast<double>(point.flows) / fill_s;
    result.peak_live_flows = memory.size();

    std::sort(install_ns.begin(), install_ns.end());
    result.install_p50_ns = percentile(install_ns, 0.50);
    result.install_p95_ns = percentile(install_ns, 0.95);
    result.install_p99_ns = percentile(install_ns, 0.99);

    // flows_for_service / idle-check at full occupancy. The counter answers
    // are O(1) regardless of `flows`; keep the pass count modest so the 10k
    // and 1M points time the same amount of work.
    constexpr std::size_t kPasses = 4096;
    volatile std::size_t sink = 0;
    auto start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            sink = sink + memory.flows_for_service(service_names[s]);
        }
    }
    result.lookup_ns = std::chrono::duration<double, std::nano>(
                           Clock::now() - start)
                           .count() /
                       static_cast<double>(kPasses * point.services);
    start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            for (std::uint32_t c = 0; c < kClusters; ++c) {
                sink = sink + memory.flows_for_service(service_names[s],
                                                       cluster_names[c]);
            }
        }
    }
    result.idle_check_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        static_cast<double>(kPasses * point.services * kClusters);

    // Expiry: advance past the idle timeout and let the periodic scan drain
    // the whole table, firing the per-(service, cluster) idle notifications.
    const auto expire_start = Clock::now();
    sim.run_until(sim.now() + kIdleTimeout + kScanPeriod * 3);
    result.expire_per_s =
        static_cast<double>(point.flows) / elapsed_s(expire_start);
    result.idle_notifications = idle_events;
    result.rss_kb = peak_rss_kb();
    result.cores_used = 1;
    result.hw_concurrency = hw_threads();
    result.kernel_events = point.flows;
    record_cascade(sim, result);
    return result;
}

/// Hybrid-fidelity fill (DESIGN §9): each service's first flow is an exact
/// cold start through the per-packet path (recall miss -> memorize), every
/// later arrival reaches the FlowMemory as a per-epoch aggregate batch
/// (admit_fluid), driven by a FluidPoissonStream. The table ends up with the
/// same `point.flows` resident flows and fires the same per-(service,
/// cluster) idle notifications as the exact fill, but the kernel carries
/// O(services x epochs) events instead of one per flow.
PointResult run_point_hybrid_once(const SweepPoint& point) {
    PointResult result;

    sim::Simulation sim(point.backend);
    sim.reserve_events(4096);
    sdn::FlowMemory::Config config;
    config.idle_timeout = kIdleTimeout;
    config.scan_period = kScanPeriod;
    config.fidelity = sdn::Fidelity::kHybrid;
    config.epoch_period = kEpochPeriod;
    sdn::FlowMemory memory(sim, config);
    memory.reserve(point.services);  // exact pool: one cold flow per service
    std::uint64_t idle_events = 0;
    memory.set_idle_service_callback(
        [&](const std::string&, const std::string&) { ++idle_events; });

    std::vector<std::string> service_names(point.services);
    std::vector<net::ServiceAddress> addresses(point.services);
    for (std::uint32_t s = 0; s < point.services; ++s) {
        service_names[s] = "svc" + std::to_string(s);
        addresses[s] = address_for(s);
    }
    std::vector<std::string> cluster_names(kClusters);
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        cluster_names[c] = "edge" + std::to_string(c);
    }

    workload::FluidPoissonStream::Options stream_options;
    stream_options.services = point.services;
    stream_options.clients = 1024;
    stream_options.limit = point.flows;
    stream_options.total_rate_per_s = static_cast<double>(point.flows) / 60.0;
    stream_options.seed = 42;
    stream_options.epoch_period = kEpochPeriod;
    workload::FluidPoissonStream stream(stream_options);

    // Batches are rare (O(services) per epoch), so every event is sampled --
    // the install percentiles price the per-batch control-plane work.
    std::vector<double> install_ns;
    std::vector<bool> warm(point.services, false);
    std::size_t installed = 0;        // flows resident so far
    std::uint64_t kernel_events = 0;  // workload events through the kernel
    std::optional<workload::TraceEvent> pending = stream.next();
    std::function<void()> fire = [&] {
        const workload::TraceEvent event = *pending;
        pending = stream.next();
        if (pending) sim.schedule_at(pending->at, [&fire] { fire(); });

        const std::uint32_t cluster = event.client % kClusters;
        const auto start = Clock::now();
        if (!warm[event.service]) {
            // Exact cold start: the decision the control plane must resolve
            // per-packet in either fidelity.
            warm[event.service] = true;
            const net::Ipv4 client_ip{0xc0000000u +
                                      static_cast<std::uint32_t>(installed)};
            const auto hit = memory.recall(client_ip, addresses[event.service]);
            if (!hit) {
                sdn::MemorizedFlow flow;
                flow.client_ip = client_ip;
                flow.service_address = addresses[event.service];
                flow.service_name = service_names[event.service];
                flow.instance_node = net::NodeId{event.service};
                flow.instance_port = 8000;
                flow.cluster = cluster_names[cluster];
                flow.created = sim.now();
                flow.last_used = sim.now();
                memory.memorize(flow);
            }
        } else {
            memory.admit_fluid(service_names[event.service],
                               cluster_names[cluster],
                               net::NodeId{event.service}, 8000, event.count);
        }
        install_ns.push_back(
            std::chrono::duration<double, std::nano>(Clock::now() - start)
                .count());
        installed += event.count;
        ++kernel_events;
    };
    if (pending) sim.schedule_at(pending->at, fire);

    const auto fill_start = Clock::now();
    sim.run_while([&] { return installed < point.flows; });
    const double fill_s = elapsed_s(fill_start);
    result.events_per_s = static_cast<double>(point.flows) / fill_s;
    result.peak_live_flows = memory.size();
    result.kernel_events = kernel_events;

    std::sort(install_ns.begin(), install_ns.end());
    result.install_p50_ns = percentile(install_ns, 0.50);
    result.install_p95_ns = percentile(install_ns, 0.95);
    result.install_p99_ns = percentile(install_ns, 0.99);

    constexpr std::size_t kPasses = 4096;
    volatile std::size_t sink = 0;
    auto start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            sink = sink + memory.flows_for_service(service_names[s]);
        }
    }
    result.lookup_ns = std::chrono::duration<double, std::nano>(
                           Clock::now() - start)
                           .count() /
                       static_cast<double>(kPasses * point.services);
    start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            for (std::uint32_t c = 0; c < kClusters; ++c) {
                sink = sink + memory.flows_for_service(service_names[s],
                                                       cluster_names[c]);
            }
        }
    }
    result.idle_check_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        static_cast<double>(kPasses * point.services * kClusters);

    const auto expire_start = Clock::now();
    sim.run_until(sim.now() + kIdleTimeout + kScanPeriod * 3);
    result.expire_per_s =
        static_cast<double>(point.flows) / elapsed_s(expire_start);
    result.idle_notifications = idle_events;
    result.rss_kb = peak_rss_kb();
    result.cores_used = 1;
    result.hw_concurrency = hw_threads();
    record_cascade(sim, result);
    return result;
}

/// The sharded control plane at `point.shards` edge sites: one sim::Domain
/// per site, each owning a ControlPlaneShard (its slice of the flow table)
/// and its own Poisson pump over a disjoint client-ip range, plus a central
/// controller domain whose aggregator receives periodic digests across the
/// kAccessLatency cut links. The whole ensemble runs under ShardedSimulation
/// with the conservative lookahead = kAccessLatency; results are
/// deterministic at any worker count.
PointResult run_point_sharded_once(const SweepPoint& point) {
    PointResult result;
    const std::size_t num_shards = point.shards;

    sim::ShardedSimulation::Options kernel;
    kernel.seed = 42;
    kernel.backend = point.backend;
    kernel.lookahead = kAccessLatency;
    kernel.sync = point.sync;
    kernel.horizon_grain = point.grain;
    sim::ShardedSimulation sharded(kernel);

    std::vector<sim::Domain*> edges;
    for (std::size_t s = 0; s < num_shards; ++s) {
        edges.push_back(&sharded.add_domain("edge" + std::to_string(s)));
    }
    sim::Domain& controller = sharded.add_domain("controller");
    sdn::ControlPlaneAggregator aggregator(controller);

    std::vector<std::string> service_names(point.services);
    std::vector<net::ServiceAddress> addresses(point.services);
    for (std::uint32_t s = 0; s < point.services; ++s) {
        service_names[s] = "svc" + std::to_string(s);
        addresses[s] = address_for(s);
    }
    std::vector<std::string> cluster_names(kClusters);
    for (std::uint32_t c = 0; c < kClusters; ++c) {
        cluster_names[c] = "edge" + std::to_string(c);
    }

    // Same aggregate load as the serial point, split across shard streams:
    // rate and event budget divide evenly, each shard's arrival sequence is
    // keyed by its stable domain id.
    workload::PoissonStream::Options base_stream;
    base_stream.services = point.services;
    base_stream.clients = 1024;
    base_stream.limit = point.flows;
    base_stream.total_rate_per_s = static_cast<double>(point.flows) / 60.0;
    base_stream.seed = 42;

    struct Shard {
        std::unique_ptr<sdn::ControlPlaneShard> plane;
        std::unique_ptr<workload::PoissonStream> stream;
        std::unique_ptr<workload::StreamPump> pump;
        std::size_t installed = 0;
    };
    std::vector<Shard> shards(num_shards);
    std::vector<double> install_ns;
    install_ns.reserve(point.flows / 64 + 1);

    for (std::size_t s = 0; s < num_shards; ++s) {
        auto& shard = shards[s];
        sdn::ControlPlaneShard::Config config;
        config.flow_memory = {kIdleTimeout, kScanPeriod};
        config.digest_period = kDigestPeriod;
        shard.plane = std::make_unique<sdn::ControlPlaneShard>(
            *edges[s], aggregator, config);
        const auto stream_options = workload::PoissonStream::shard_options(
            base_stream, static_cast<std::uint32_t>(s),
            static_cast<std::uint32_t>(num_shards));
        shard.plane->memory().reserve(stream_options.limit);
        shard.stream = std::make_unique<workload::PoissonStream>(stream_options);

        // Disjoint per-shard client-ip blocks keep flows unique within their
        // shard's slice of the table (a shard never sees another's clients,
        // exactly like clients homed at different sites).
        const std::uint32_t ip_base =
            0xc0000000u + static_cast<std::uint32_t>(s) * 0x01000000u;
        shard.pump = std::make_unique<workload::StreamPump>(
            edges[s]->sim(), *shard.stream,
            [&shard, ip_base, &addresses, &service_names, &cluster_names,
             &install_ns](const workload::TraceEvent& event,
                          const std::optional<workload::TraceEvent>& next) {
                if (next) {
                    shard.plane->memory().prefetch(
                        net::Ipv4{ip_base +
                                  static_cast<std::uint32_t>(shard.installed) + 1},
                        addresses[next->service]);
                }
                const net::Ipv4 client_ip{
                    ip_base + static_cast<std::uint32_t>(shard.installed)};
                const bool sampled = (shard.installed % 64) == 0;
                const auto start = sampled ? Clock::now() : Clock::time_point{};
                shard.plane->packet_in(client_ip, addresses[event.service],
                                       service_names[event.service],
                                       net::NodeId{event.service}, 8000,
                                       cluster_names[event.client % kClusters]);
                if (sampled) {
                    install_ns.push_back(std::chrono::duration<double, std::nano>(
                                             Clock::now() - start)
                                             .count());
                }
                ++shard.installed;
            });
        shard.plane->start();
        shard.pump->start();
    }

    const auto fill_start = Clock::now();
    sharded.run();  // drains every pump; digest daemons ride along
    const double fill_s = elapsed_s(fill_start);
    result.events_per_s = static_cast<double>(point.flows) / fill_s;
    for (const auto& shard : shards) {
        result.peak_live_flows += shard.plane->memory().size();
    }

    std::sort(install_ns.begin(), install_ns.end());
    result.install_p50_ns = percentile(install_ns, 0.50);
    result.install_p95_ns = percentile(install_ns, 0.95);
    result.install_p99_ns = percentile(install_ns, 0.99);

    // Control-plane queries now fan out over the shards (the aggregate the
    // central controller would compute from per-shard answers).
    constexpr std::size_t kPasses = 4096;
    volatile std::size_t sink = 0;
    auto start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            std::size_t total = 0;
            for (const auto& shard : shards) {
                total += shard.plane->memory().flows_for_service(service_names[s]);
            }
            sink = sink + total;
        }
    }
    result.lookup_ns = std::chrono::duration<double, std::nano>(
                           Clock::now() - start)
                           .count() /
                       static_cast<double>(kPasses * point.services);
    start = Clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (std::uint32_t s = 0; s < point.services; ++s) {
            for (std::uint32_t c = 0; c < kClusters; ++c) {
                std::size_t total = 0;
                for (const auto& shard : shards) {
                    total += shard.plane->memory().flows_for_service(
                        service_names[s], cluster_names[c]);
                }
                sink = sink + total;
            }
        }
    }
    result.idle_check_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        static_cast<double>(kPasses * point.services * kClusters);

    // Expiry sweeps run per shard, in parallel like the fill.
    const auto expire_start = Clock::now();
    sharded.run_until(sharded.now() + kIdleTimeout + kScanPeriod * 3);
    result.expire_per_s =
        static_cast<double>(point.flows) / elapsed_s(expire_start);
    for (const auto& shard : shards) {
        result.idle_notifications += shard.plane->idle_notifications();
    }
    result.sync_rounds = sharded.rounds();
    result.null_messages = sharded.null_messages();
    result.wakeups = sharded.lane_wakeups();
    result.suppressed = sharded.suppressed_publications();
    result.demands = sharded.demand_requests();
    for (const auto& lane : sharded.lane_stats()) {
        result.lane_busy_ns += lane.busy_ns;
        result.lane_blocked_ns += lane.blocked_ns;
        result.parks += lane.parks;
        result.parked_ns += lane.parked_ns;
    }
    result.lane_count = static_cast<std::uint32_t>(sharded.lane_stats().size());
    result.digests = aggregator.digests_received();
    result.rss_kb = peak_rss_kb();
    // One worker lane per domain (edges + controller), capped by the host.
    result.cores_used = static_cast<std::uint32_t>(
        std::min<std::size_t>(num_shards + 1, hw_threads()));
    result.hw_concurrency = hw_threads();
    result.kernel_events = point.flows;
    for (auto* edge : edges) record_cascade(edge->sim(), result);
    record_cascade(controller.sim(), result);
    return result;
}

/// Small points finish in milliseconds, which makes a single fill far too
/// jittery to gate on (>20% run-to-run). Repeat them and keep the fastest
/// run; the 1M points are longer but still see host-load spikes, so they get
/// a smaller repeat count. VmHWM is process-wide and every repeat allocates
/// the same amount, so the RSS number is unaffected by repetition.
PointResult run_point(const SweepPoint& point) {
    const auto once = [&point] {
        if (point.fidelity == sdn::Fidelity::kHybrid) {
            return run_point_hybrid_once(point);
        }
        return point.shards > 1 ? run_point_sharded_once(point)
                                : run_point_once(point);
    };
    const int repeats = point.flows <= 100'000 ? 5 : 3;
    PointResult best = once();
    for (int i = 1; i < repeats; ++i) {
        const PointResult run = once();
        if (run.events_per_s > best.events_per_s) best = run;
    }
    return best;
}

// -------------------------------------------------- pre-change comparisons

/// The seed FlowMemory entry: ordered map keyed by (client-ip, address) with
/// two owning strings per flow; flows_for_service and the idle check were
/// linear scans over every memorized flow.
struct LegacyFlow {
    net::Ipv4 client_ip;
    net::ServiceAddress service_address;
    std::string service_name;
    net::NodeId instance_node;
    std::uint16_t instance_port = 0;
    std::string cluster;
    sim::SimTime created;
    sim::SimTime last_used;
};
using LegacyMap =
    std::map<std::pair<std::uint32_t, net::ServiceAddress>, LegacyFlow>;

LegacyMap build_legacy(std::size_t flows, std::uint32_t services) {
    LegacyMap legacy;
    for (std::size_t i = 0; i < flows; ++i) {
        const auto service = static_cast<std::uint32_t>(i % services);
        LegacyFlow flow;
        flow.client_ip = net::Ipv4{0xc0000000u + static_cast<std::uint32_t>(i)};
        flow.service_address = address_for(service);
        flow.service_name = "svc" + std::to_string(service);
        flow.instance_node = net::NodeId{service};
        flow.instance_port = 8000;
        flow.cluster = "edge" + std::to_string(i % kClusters);
        legacy.emplace(std::pair{flow.client_ip.value(), flow.service_address},
                       flow);
    }
    return legacy;
}

struct LookupComparison {
    double legacy_lookup_ns = 0;
    double new_lookup_ns = 0;
    double legacy_idle_ns = 0;
    double new_idle_ns = 0;
};

/// 100k-flow flows_for_service()/idle-check: counters vs the legacy scan.
LookupComparison compare_lookups(std::size_t flows, std::uint32_t services) {
    LookupComparison cmp;

    sim::Simulation sim;
    sdn::FlowMemory memory(sim, {kIdleTimeout, kScanPeriod});
    memory.reserve(flows);
    for (std::size_t i = 0; i < flows; ++i) {
        const auto service = static_cast<std::uint32_t>(i % services);
        sdn::MemorizedFlow flow;
        flow.client_ip = net::Ipv4{0xc0000000u + static_cast<std::uint32_t>(i)};
        flow.service_address = address_for(service);
        flow.service_name = "svc" + std::to_string(service);
        flow.instance_node = net::NodeId{service};
        flow.instance_port = 8000;
        flow.cluster = "edge" + std::to_string(i % kClusters);
        memory.memorize(flow);
    }
    const LegacyMap legacy = build_legacy(flows, services);

    // The lookup probe targets a populated service; the idle probe targets a
    // (service, cluster) pair with zero live flows -- the case that matters
    // for scale-down, and the legacy scan's worst case (it must walk every
    // flow to conclude "idle" instead of stopping at the first match).
    // With services=8 and 2 clusters, svc0 flows sit at indices i % 8 == 0,
    // all even, so cluster edge1 never serves svc0.
    const std::string probe_service = "svc0";
    const std::string probe_cluster = "edge1";
    volatile std::size_t sink = 0;

    constexpr std::size_t kNewPasses = 1 << 16;
    auto start = Clock::now();
    for (std::size_t i = 0; i < kNewPasses; ++i) {
        sink = sink + memory.flows_for_service(probe_service);
    }
    cmp.new_lookup_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        kNewPasses;
    start = Clock::now();
    for (std::size_t i = 0; i < kNewPasses; ++i) {
        sink = sink + memory.flows_for_service(probe_service, probe_cluster);
    }
    cmp.new_idle_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        kNewPasses;

    constexpr std::size_t kLegacyPasses = 16; // full scans: keep it bearable
    start = Clock::now();
    for (std::size_t i = 0; i < kLegacyPasses; ++i) {
        std::size_t count = 0;
        for (const auto& [key, flow] : legacy) {
            if (flow.service_name == probe_service) ++count;
        }
        sink = sink + count;
    }
    cmp.legacy_lookup_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        kLegacyPasses;
    start = Clock::now();
    for (std::size_t i = 0; i < kLegacyPasses; ++i) {
        bool any = false;
        for (const auto& [key, flow] : legacy) {
            if (flow.service_name == probe_service &&
                flow.cluster == probe_cluster) {
                any = true;
                break; // the idle check only needs existence
            }
        }
        sink = sink + (any ? 1 : 0); // probe pair is idle: full scan every pass
    }
    cmp.legacy_idle_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        kLegacyPasses;
    return cmp;
}

/// Peak RSS of the pre-change shape at `flows`: the string-bearing ordered
/// map plus what the old replay materialized up front -- the full trace and
/// one closure per event pre-scheduled into a real event queue (capture list
/// copied from the old TraceRunner::replay loop).
long legacy_rss_kb(std::size_t flows, std::uint32_t services) {
    const LegacyMap legacy = build_legacy(flows, services);

    sim::Simulation sim;
    std::vector<workload::TraceEvent> trace(flows);
    volatile std::size_t sink = 0;
    for (std::size_t i = 0; i < flows; ++i) {
        const auto service = static_cast<std::uint32_t>(i % services);
        trace[i] = workload::TraceEvent{sim::from_seconds(static_cast<double>(i)),
                                        0, service};
        const workload::TraceEvent event = trace[i];
        const net::NodeId node{service};
        const net::ServiceAddress address = address_for(service);
        const sim::Bytes size = 120;
        const std::string tag = "svc" + std::to_string(service);
        sim.schedule_at(event.at, [&sink, node, event, address, size, tag] {
            sink = sink + tag.size() + event.client + node.value +
                   address.port + static_cast<std::size_t>(size);
        });
    }
    sink = sink + legacy.size();
    return peak_rss_kb();
}

// ----------------------------------------------------------------- output

std::string json_point(const SweepPoint& point, const PointResult& result) {
    std::ostringstream out;
    out << "    {\"flows\": " << point.flows
        << ", \"services\": " << point.services
        << ", \"backend\": \"" << backend_str(point.backend)
        << "\", \"shards\": " << point.shards
        << ", \"fidelity\": \"" << sdn::to_string(point.fidelity)
        << "\", \"sync_mode\": \"" << sync_str(point)
        << "\", \"grain\": " << grain_label(point)
        << ", \"cores_used\": " << result.cores_used
        << ", \"hw_concurrency\": " << result.hw_concurrency
        << ", \"kernel_events\": " << result.kernel_events
        << ", \"sync_rounds\": " << result.sync_rounds
        << ", \"null_messages\": " << result.null_messages
        << ", \"wakeups\": " << result.wakeups
        << ", \"parks\": " << result.parks
        << ", \"parked_ns\": " << result.parked_ns
        << ", \"suppressed\": " << result.suppressed
        << ", \"demands\": " << result.demands
        << ", \"lanes\": " << result.lane_count
        << ", \"lane_busy_ns\": " << result.lane_busy_ns
        << ", \"lane_blocked_ns\": " << result.lane_blocked_ns
        << ", \"digests\": " << result.digests
        << ", \"events_per_s\": "
        << static_cast<std::uint64_t>(result.events_per_s)
        << ", \"install_p50_ns\": "
        << static_cast<std::uint64_t>(result.install_p50_ns)
        << ", \"install_p95_ns\": "
        << static_cast<std::uint64_t>(result.install_p95_ns)
        << ", \"install_p99_ns\": "
        << static_cast<std::uint64_t>(result.install_p99_ns)
        << ", \"lookup_ns\": " << static_cast<std::uint64_t>(result.lookup_ns)
        << ", \"idle_check_ns\": "
        << static_cast<std::uint64_t>(result.idle_check_ns)
        << ", \"expire_per_s\": "
        << static_cast<std::uint64_t>(result.expire_per_s)
        << ", \"peak_rss_kb\": " << result.rss_kb
        << ", \"idle_notifications\": " << result.idle_notifications
        << ", \"peak_live_flows\": " << result.peak_live_flows
        << ", \"events_scheduled\": " << result.events_scheduled
        << ", \"cascade_refiled\": " << result.cascade_refiled
        << ", \"cascade_max_burst\": " << result.cascade_max_burst << "}";
    return out.str();
}

/// Extract the number following `"key": ` on `line`; nullopt if absent.
std::optional<double> extract_number(const std::string& line,
                                     const std::string& key) {
    const std::string needle = "\"" + key + "\": ";
    const auto at = line.find(needle);
    if (at == std::string::npos) return std::nullopt;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/// Extract the quoted string following `"key": "` on `line`; nullopt if
/// absent.
std::optional<std::string> extract_string(const std::string& line,
                                          const std::string& key) {
    const std::string needle = "\"" + key + "\": \"";
    const auto at = line.find(needle);
    if (at == std::string::npos) return std::nullopt;
    const auto start = at + needle.size();
    const auto end = line.find('"', start);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(start, end - start);
}

using BaselineKey = std::tuple<std::size_t, std::uint32_t, std::string,
                               std::size_t, std::string, std::string, double>;

/// events/s per (flows, services, backend, shards, fidelity, sync, grain)
/// point parsed from a BENCH_scale.json. Points written before the backend
/// dimension existed carry no "backend" field; those were measured on the
/// binary heap, so they gate the heap rows of a newer run. Points written
/// before the shard / fidelity dimensions existed parse as shards=1 / exact,
/// points written before the sync dimension existed were all measured on
/// the barrier coordinator, so they parse as sync_mode=barrier, and points
/// written before the grain dimension existed parse as grain=0.
std::map<BaselineKey, double> parse_baseline(const std::string& path) {
    std::map<BaselineKey, double> baseline;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto flows = extract_number(line, "flows");
        const auto services = extract_number(line, "services");
        const auto events = extract_number(line, "events_per_s");
        const auto backend = extract_string(line, "backend");
        const auto shards = extract_number(line, "shards");
        const auto fidelity = extract_string(line, "fidelity");
        const auto sync = extract_string(line, "sync_mode");
        const auto grain = extract_number(line, "grain");
        if (flows && services && events) {
            baseline[{static_cast<std::size_t>(*flows),
                      static_cast<std::uint32_t>(*services),
                      backend.value_or("heap"),
                      static_cast<std::size_t>(shards.value_or(1)),
                      fidelity.value_or("exact"),
                      sync.value_or("barrier"),
                      grain.value_or(0.0)}] = *events;
        }
    }
    return baseline;
}

/// "1,2,8" -> {1, 2, 8}; nullopt on anything non-numeric or non-positive.
std::optional<std::vector<std::size_t>> parse_shards_csv(const std::string& csv) {
    std::vector<std::size_t> shards;
    std::stringstream in(csv);
    std::string token;
    while (std::getline(in, token, ',')) {
        char* end = nullptr;
        const long value = std::strtol(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0' || value <= 0) {
            return std::nullopt;
        }
        shards.push_back(static_cast<std::size_t>(value));
    }
    if (shards.empty()) return std::nullopt;
    return shards;
}

/// "0,0.25,1" -> {0, 0.25, 1}; nullopt on anything non-numeric or negative.
std::optional<std::vector<double>> parse_grain_csv(const std::string& csv) {
    std::vector<double> grains;
    std::stringstream in(csv);
    std::string token;
    while (std::getline(in, token, ',')) {
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0' || value < 0) {
            return std::nullopt;
        }
        grains.push_back(value);
    }
    if (grains.empty()) return std::nullopt;
    return grains;
}

} // namespace
} // namespace tedge::bench

int main(int argc, char** argv) {
    using namespace tedge;
    using namespace tedge::bench;

    bool quick = false;
    std::string out_path = "BENCH_scale.json";
    std::string baseline_path;
    std::string backend_arg = "wheel";
    std::string shards_arg = "1,2,8";
    std::string fidelity_arg = "both";
    std::string sync_arg = "channel";
    std::string grain_arg = "0.25";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--backend" && i + 1 < argc) {
            backend_arg = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            shards_arg = argv[++i];
        } else if (arg == "--fidelity" && i + 1 < argc) {
            fidelity_arg = argv[++i];
        } else if (arg == "--sync" && i + 1 < argc) {
            sync_arg = argv[++i];
        } else if (arg == "--grain" && i + 1 < argc) {
            grain_arg = argv[++i];
        } else {
            std::cerr << "usage: bench_scale [--quick] "
                         "[--backend heap|wheel|both] [--shards <csv>] "
                         "[--fidelity exact|hybrid|both] "
                         "[--sync channel|channel-locked|barrier|both|all] "
                         "[--grain <csv>] "
                         "[--out <file>] [--baseline <file>]\n";
            return 2;
        }
    }
    const auto shard_counts = parse_shards_csv(shards_arg);
    if (!shard_counts) {
        std::cerr << "bad --shards '" << shards_arg
                  << "' (expected comma-separated positive integers)\n";
        return 2;
    }
    std::vector<sim::QueueBackend> backends;
    if (backend_arg == "heap") {
        backends = {sim::QueueBackend::kHeap};
    } else if (backend_arg == "wheel") {
        backends = {sim::QueueBackend::kWheel};
    } else if (backend_arg == "both") {
        backends = {sim::QueueBackend::kHeap, sim::QueueBackend::kWheel};
    } else {
        std::cerr << "unknown --backend '" << backend_arg
                  << "' (expected heap, wheel, or both)\n";
        return 2;
    }
    std::vector<sdn::Fidelity> fidelities;
    if (fidelity_arg == "exact") {
        fidelities = {sdn::Fidelity::kExact};
    } else if (fidelity_arg == "hybrid") {
        fidelities = {sdn::Fidelity::kHybrid};
    } else if (fidelity_arg == "both") {
        fidelities = {sdn::Fidelity::kExact, sdn::Fidelity::kHybrid};
    } else {
        std::cerr << "unknown --fidelity '" << fidelity_arg
                  << "' (expected exact, hybrid, or both)\n";
        return 2;
    }
    std::vector<sim::SyncMode> syncs;
    if (sync_arg == "channel") {
        syncs = {sim::SyncMode::kChannel};
    } else if (sync_arg == "channel-locked" || sync_arg == "locked") {
        syncs = {sim::SyncMode::kChannelLocked};
    } else if (sync_arg == "barrier") {
        syncs = {sim::SyncMode::kBarrier};
    } else if (sync_arg == "both") {
        syncs = {sim::SyncMode::kBarrier, sim::SyncMode::kChannel};
    } else if (sync_arg == "all") {
        syncs = {sim::SyncMode::kBarrier, sim::SyncMode::kChannelLocked,
                 sim::SyncMode::kChannel};
    } else {
        std::cerr << "unknown --sync '" << sync_arg
                  << "' (expected channel, channel-locked, barrier, both, or "
                     "all)\n";
        return 2;
    }
    const auto grain_values = parse_grain_csv(grain_arg);
    if (!grain_values) {
        std::cerr << "bad --grain '" << grain_arg
                  << "' (expected comma-separated non-negative fractions)\n";
        return 2;
    }

    print_header("scale",
                 "control-plane scale sweep: concurrent flows x services -> "
                 "events/s, install latency, peak RSS");

    const std::vector<std::size_t> base_flow_counts =
        quick ? std::vector<std::size_t>{10'000, 100'000}
              : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
    const std::vector<std::uint32_t> service_counts = {1, 8, 64};

    std::vector<std::pair<SweepPoint, PointResult>> results;
    workload::TextTable table({"fidelity", "backend", "shards", "sync",
                               "grain", "flows", "services", "events/s",
                               "install p50", "install p99", "lookup ns",
                               "idle ns", "peak RSS MB"});
    for (const auto fidelity : fidelities) {
        for (const auto backend : backends) {
            for (const auto shards : *shard_counts) {
                // The heap rows exist to compare queue backends on the serial
                // kernel; sharded points sweep the production wheel only. The
                // hybrid fast path is a serial-kernel feature.
                if (shards > 1 && (backend != sim::QueueBackend::kWheel ||
                                   fidelity == sdn::Fidelity::kHybrid)) {
                    continue;
                }
                std::vector<std::size_t> flow_counts = base_flow_counts;
                if (fidelity == sdn::Fidelity::kHybrid && shards == 1 && !quick) {
                    // The fluid rows the exact path cannot reach.
                    flow_counts.push_back(10'000'000);
                    flow_counts.push_back(100'000'000);
                }
                for (const auto sync : syncs) {
                    // The sync dimension only exists for sharded points; a
                    // serial point runs once no matter how many modes sweep.
                    if (shards == 1 && sync != syncs.front()) continue;
                for (const auto grain : *grain_values) {
                    // Only the lock-free channel coordinator reads the grain;
                    // every other row runs once no matter how many sweep.
                    if ((shards == 1 || sync != sim::SyncMode::kChannel) &&
                        grain != grain_values->front()) {
                        continue;
                    }
                for (const auto flows : flow_counts) {
                    for (const auto services : service_counts) {
                        const SweepPoint point{flows, services, backend, shards,
                                               fidelity, sync, grain};
                        const auto result = run_forked<PointResult>(
                            [point] { return run_point(point); });
                        if (!result) {
                            std::cerr << "point " << flows << "x" << services
                                      << " (" << backend_str(backend)
                                      << ", shards " << shards << ", "
                                      << sdn::to_string(fidelity)
                                      << ") failed (child died)\n";
                            return 1;
                        }
                        if (result->peak_live_flows != flows ||
                            result->idle_notifications == 0) {
                            std::cerr << "point " << flows << "x" << services
                                      << " (" << backend_str(backend)
                                      << ", shards " << shards << ", "
                                      << sdn::to_string(fidelity)
                                      << ") invalid: live="
                                      << result->peak_live_flows
                                      << " idle_notifications="
                                      << result->idle_notifications << "\n";
                            return 1;
                        }
                        results.emplace_back(point, *result);
                        table.add_row(
                            {sdn::to_string(fidelity), backend_str(backend),
                             std::to_string(shards),
                             shards > 1 ? sync_str(point) : "-",
                             shards > 1 && sync == sim::SyncMode::kChannel
                                 ? workload::TextTable::num(grain, 2)
                                 : "-",
                             std::to_string(flows), std::to_string(services),
                             workload::TextTable::num(result->events_per_s, 0),
                             workload::TextTable::num(result->install_p50_ns,
                                                      0) +
                                 " ns",
                             workload::TextTable::num(result->install_p99_ns,
                                                      0) +
                                 " ns",
                             workload::TextTable::num(result->lookup_ns, 0),
                             workload::TextTable::num(result->idle_check_ns, 0),
                             workload::TextTable::num(
                                 static_cast<double>(result->rss_kb) / 1024.0,
                                 1)});
                    }
                }
                }
                }
            }
        }
    }
    std::cout << table.str() << "\n";

    // Hybrid vs exact at shared points: flows per wall-clock second in both
    // modes, so the ratio is the control-plane speedup the fluid fast path
    // buys. The 1M x 8 wheel point carries a hard >= 10x acceptance gate.
    if (fidelities.size() == 2) {
        workload::TextTable speedup({"backend", "flows", "services",
                                     "exact ev/s", "hybrid ev/s", "speedup",
                                     "kernel events"});
        bool gate_failed = false;
        for (const auto& [point, result] : results) {
            if (point.fidelity != sdn::Fidelity::kHybrid || point.shards != 1) {
                continue;
            }
            double exact_events = 0;
            for (const auto& [p, r] : results) {
                if (p.fidelity == sdn::Fidelity::kExact && p.shards == 1 &&
                    p.backend == point.backend && p.flows == point.flows &&
                    p.services == point.services) {
                    exact_events = r.events_per_s;
                }
            }
            if (exact_events <= 0) continue;
            const double ratio = result.events_per_s / exact_events;
            speedup.add_row(
                {backend_str(point.backend), std::to_string(point.flows),
                 std::to_string(point.services),
                 workload::TextTable::num(exact_events, 0),
                 workload::TextTable::num(result.events_per_s, 0),
                 workload::TextTable::num(ratio, 1) + "x",
                 std::to_string(result.kernel_events)});
            if (point.flows == 1'000'000 && point.services == 8 &&
                point.backend == sim::QueueBackend::kWheel && ratio < 10.0) {
                gate_failed = true;
            }
        }
        std::cout << "hybrid vs exact, fill flows/s:\n" << speedup.str() << "\n";
        if (gate_failed) {
            std::cerr << "HYBRID GATE: < 10x exact at the 1M x 8 wheel point\n";
            return 1;
        }
    }

    // Wheel cascade accounting: staging re-files are the wheel's only
    // super-constant per-event work, so their amortized count is the
    // tail-latency budget. The numbers are deterministic at the fixed seed
    // (no timing involved), and the wheel geometry bounds re-files per
    // entry by the number of levels the run's horizon spans -- under 7 for
    // anything shorter than 2^41 ns. A violation means staging regressed
    // (e.g. an entry re-filing at its own level and cascading repeatedly),
    // exactly the failure mode that shows up as install_p99 spikes first.
    {
        workload::TextTable cascade({"fidelity", "shards", "flows", "services",
                                     "scheduled", "refiled", "refiles/event",
                                     "max burst"});
        bool bound_violated = false;
        for (const auto& [point, result] : results) {
            if (point.backend != sim::QueueBackend::kWheel) continue;
            if (result.events_scheduled == 0) continue;
            const double per_event =
                static_cast<double>(result.cascade_refiled) /
                static_cast<double>(result.events_scheduled);
            cascade.add_row({sdn::to_string(point.fidelity),
                             std::to_string(point.shards),
                             std::to_string(point.flows),
                             std::to_string(point.services),
                             std::to_string(result.events_scheduled),
                             std::to_string(result.cascade_refiled),
                             workload::TextTable::num(per_event, 2),
                             std::to_string(result.cascade_max_burst)});
            if (per_event > 7.0) bound_violated = true;
        }
        std::cout << "wheel cascade bound (amortized re-files/event <= 7):\n"
                  << cascade.str() << "\n";
        if (bound_violated) {
            std::cerr << "CASCADE BOUND: wheel re-filed > 7x per scheduled "
                         "event -- staging is no longer amortized O(1)\n";
            return 1;
        }
    }

    // Shard-scaling view: events/s vs the serial kernel at the same point
    // (wheel rows only; the serial wheel row is the committed baseline).
    if (shard_counts->size() > 1) {
        workload::TextTable scaling({"flows", "services", "shards", "sync",
                                     "grain", "cores", "events/s", "vs serial",
                                     "per-core eff", "sync rounds", "nulls",
                                     "wakeups", "parks/lane", "parked ms/lane",
                                     "busy ms", "blocked ms", "digests"});
        for (const auto flows : base_flow_counts) {
            for (const auto services : service_counts) {
                double serial_events = 0;
                for (const auto& [point, result] : results) {
                    if (point.backend == sim::QueueBackend::kWheel &&
                        point.fidelity == sdn::Fidelity::kExact &&
                        point.shards == 1 && point.flows == flows &&
                        point.services == services) {
                        serial_events = result.events_per_s;
                    }
                }
                if (serial_events <= 0) continue;
                for (const auto& [point, result] : results) {
                    if (point.backend != sim::QueueBackend::kWheel ||
                        point.fidelity != sdn::Fidelity::kExact ||
                        point.flows != flows || point.services != services) {
                        continue;
                    }
                    // Speedup normalized by the cores the point could use: a
                    // perfectly scaling shard sweep holds this near 1.0, and
                    // on a single-core host the sharded rows honestly report
                    // their serialization instead of faking scale-out.
                    const double speedup = result.events_per_s / serial_events;
                    const double per_core =
                        speedup / static_cast<double>(result.cores_used);
                    // Lock contention per lane: how often a gate wait fell
                    // through the spin to the condvar, and how long it sat
                    // there. A contended plane parks often and long; a
                    // well-suppressed one wakes rarely in the first place.
                    const double lanes = std::max(1u, result.lane_count);
                    scaling.add_row(
                        {std::to_string(flows), std::to_string(services),
                         std::to_string(point.shards),
                         point.shards > 1 ? sync_str(point) : "-",
                         point.shards > 1 && point.sync == sim::SyncMode::kChannel
                             ? workload::TextTable::num(point.grain, 2)
                             : "-",
                         std::to_string(result.cores_used),
                         workload::TextTable::num(result.events_per_s, 0),
                         workload::TextTable::num(speedup, 2) + "x",
                         workload::TextTable::num(per_core, 2),
                         std::to_string(result.sync_rounds),
                         std::to_string(result.null_messages),
                         std::to_string(result.wakeups),
                         workload::TextTable::num(
                             static_cast<double>(result.parks) / lanes, 1),
                         workload::TextTable::num(
                             static_cast<double>(result.parked_ns) / lanes / 1e6,
                             1),
                         workload::TextTable::num(
                             static_cast<double>(result.lane_busy_ns) / 1e6, 1),
                         workload::TextTable::num(
                             static_cast<double>(result.lane_blocked_ns) / 1e6,
                             1),
                         std::to_string(result.digests)});
                }
            }
        }
        std::cout << "shard scaling, fill events/s (wheel backend, exact):\n"
                  << scaling.str() << "\n";
    }

    // Side-by-side events/s when both backends were swept (the CI artifact).
    if (backends.size() == 2) {
        workload::TextTable versus(
            {"flows", "services", "heap ev/s", "wheel ev/s", "wheel/heap"});
        for (const auto flows : base_flow_counts) {
            for (const auto services : service_counts) {
                double heap_events = 0;
                double wheel_events = 0;
                for (const auto& [point, result] : results) {
                    if (point.flows != flows || point.services != services ||
                        point.shards != 1 ||
                        point.fidelity != sdn::Fidelity::kExact) {
                        continue;
                    }
                    (point.backend == sim::QueueBackend::kHeap
                         ? heap_events
                         : wheel_events) = result.events_per_s;
                }
                if (heap_events <= 0 || wheel_events <= 0) continue;
                versus.add_row({std::to_string(flows),
                                std::to_string(services),
                                workload::TextTable::num(heap_events, 0),
                                workload::TextTable::num(wheel_events, 0),
                                workload::TextTable::num(
                                    wheel_events / heap_events, 2) + "x"});
            }
        }
        std::cout << "heap vs wheel, fill events/s:\n"
                  << versus.str() << "\n";
    }

    // 100k honesty check: maintained counters vs the legacy linear scan.
    const auto comparison = compare_lookups(100'000, 8);
    const double lookup_speedup =
        comparison.legacy_lookup_ns / comparison.new_lookup_ns;
    const double idle_speedup =
        comparison.legacy_idle_ns / comparison.new_idle_ns;
    std::cout << "100k flows, flows_for_service: legacy "
              << workload::TextTable::num(comparison.legacy_lookup_ns, 0)
              << " ns -> new "
              << workload::TextTable::num(comparison.new_lookup_ns, 0)
              << " ns (" << workload::TextTable::num(lookup_speedup, 1)
              << "x)\n";
    std::cout << "100k flows, idle check:        legacy "
              << workload::TextTable::num(comparison.legacy_idle_ns, 0)
              << " ns -> new "
              << workload::TextTable::num(comparison.new_idle_ns, 0) << " ns ("
              << workload::TextTable::num(idle_speedup, 1) << "x)\n";

    // 1M RSS honesty check (skipped in --quick: it allocates ~0.5 GB).
    double rss_ratio = 0;
    long new_rss_1m = 0;
    long old_rss_1m = 0;
    if (!quick) {
        for (const auto& [point, result] : results) {
            if (point.flows == 1'000'000 && point.services == 64 &&
                point.shards == 1 &&
                point.fidelity == sdn::Fidelity::kExact) {
                new_rss_1m = result.rss_kb;
            }
        }
        const auto legacy = run_forked<long>(
            [] { return legacy_rss_kb(1'000'000, 64); });
        if (legacy && *legacy > 0 && new_rss_1m > 0) {
            old_rss_1m = *legacy;
            rss_ratio = static_cast<double>(new_rss_1m) /
                        static_cast<double>(old_rss_1m);
            std::cout << "1M-flow peak RSS: new " << new_rss_1m / 1024
                      << " MB vs pre-change shape " << old_rss_1m / 1024
                      << " MB (ratio "
                      << workload::TextTable::num(rss_ratio, 2) << ")\n";
        }
    }

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"bench_scale\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        out << json_point(results[i].first, results[i].second)
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"lookup_speedup_100k\": {\"flows_for_service\": "
        << workload::TextTable::num(lookup_speedup, 1)
        << ", \"idle_check\": " << workload::TextTable::num(idle_speedup, 1)
        << "},\n";
    out << "  \"rss_1m\": {\"new_kb\": " << new_rss_1m
        << ", \"legacy_kb\": " << old_rss_1m << ", \"ratio\": "
        << workload::TextTable::num(rss_ratio, 3) << "}\n";
    out << "}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        const auto baseline = parse_baseline(baseline_path);
        if (baseline.empty()) {
            std::cerr << "baseline " << baseline_path
                      << " missing or unparseable\n";
            return 1;
        }
        // Gate on the geometric mean of per-point ratios: a single point can
        // still jitter by more than any per-point tolerance would allow, but
        // a >20% drop across the whole sweep is a real regression.
        double log_ratio_sum = 0;
        std::size_t compared = 0;
        for (const auto& [point, result] : results) {
            const auto it = baseline.find({point.flows, point.services,
                                           backend_str(point.backend),
                                           point.shards,
                                           sdn::to_string(point.fidelity),
                                           sync_str(point),
                                           grain_label(point)});
            if (it == baseline.end() || it->second <= 0) continue;
            const double ratio = result.events_per_s / it->second;
            std::cout << "  " << point.flows << "x" << point.services << " ("
                      << backend_str(point.backend) << ", shards "
                      << point.shards << ", " << sdn::to_string(point.fidelity)
                      << "): " << workload::TextTable::num(ratio, 2)
                      << "x baseline\n";
            log_ratio_sum += std::log(ratio);
            ++compared;
        }
        if (compared == 0) {
            std::cerr << "baseline shares no sweep points with this run\n";
            return 1;
        }
        const double mean_ratio =
            std::exp(log_ratio_sum / static_cast<double>(compared));
        std::cout << "events/s vs baseline (geometric mean over " << compared
                  << " points): " << workload::TextTable::num(mean_ratio, 2)
                  << "x\n";
        if (mean_ratio < 0.8) {
            std::cerr << "REGRESSION: events/s dropped "
                      << workload::TextTable::num((1 - mean_ratio) * 100, 0)
                      << "% vs baseline (gate: 20%)\n";
            return 1;
        }
        std::cout << "baseline check passed\n";
    }
    return 0;
}
