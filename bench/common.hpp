// Shared experiment drivers for the per-figure bench binaries.
//
// Each paper experiment is reproduced with the paper's own methodology:
// 42 copies of one service type are registered, the bigFlows-like trace
// (1708 requests / 5 min) is replayed, and the first request of each service
// triggers an on-demand deployment whose phases the DeploymentEngine times.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simcore/metrics_registry.hpp"
#include "simcore/sharded_simulation.hpp"
#include "simcore/simulation.hpp"
#include "simcore/stats.hpp"
#include "simcore/tracer.hpp"
#include "testbed/c3.hpp"
#include "workload/bigflows.hpp"
#include "workload/metrics.hpp"

namespace tedge::bench {

struct DeploymentExperimentOptions {
    std::string cluster_kind = "docker";  ///< "docker" or "k8s"
    std::string service_key = "nginx";
    bool pre_pull = true;     ///< images cached before the run
    bool pre_create = true;   ///< true: Scale Up only (fig 11); false: Create+Scale Up (fig 12)
    std::uint32_t num_services = 42;
    std::size_t num_requests = 1708;
    sim::SimTime horizon = sim::seconds(300);
    std::uint64_t seed = 1;
    /// Optional observability hooks, attached to the experiment's Simulation
    /// for the duration of the run (the tracer is detached again before the
    /// testbed is destroyed, keeping its recorded spans). Only use from
    /// single-threaded runs -- never with run_deployment_replications.
    sim::Tracer* tracer = nullptr;
    sim::MetricsRegistry* metrics = nullptr;
    /// 0: the platform owns a plain serial kernel (legacy path). >= 1: host
    /// the testbed in domain 0 of a ShardedSimulation. The C3 testbed is one
    /// strongly-coupled site -- its intra-EGS links are near-zero latency --
    /// so the partitioning rule maps the whole testbed to a single domain
    /// whatever the shard count; requesting more shards than domains just
    /// leaves lanes idle. Results are bit-identical to the serial path by
    /// the coordinator's single-domain equivalence. Set from TEDGE_SHARDS in
    /// the figure benches.
    std::size_t shards = 0;
};

/// TEDGE_SHARDS parsed as a shard count, or 0 when unset/invalid (the
/// legacy self-hosted kernel).
[[nodiscard]] std::size_t shards_from_env();

/// TEDGE_FIDELITY parsed as a control-plane fidelity ("exact" / "hybrid"),
/// or kExact when unset. An unknown value aborts loudly rather than silently
/// running the wrong mode -- the differential harness depends on it.
[[nodiscard]] sdn::Fidelity fidelity_from_env();

struct DeploymentExperimentResult {
    sim::SampleSet first_request_ms;  ///< deployment-triggering request totals
    sim::SampleSet warm_request_ms;   ///< requests served by a running instance
    sim::SampleSet wait_ready_ms;     ///< controller port-probe wait (figs 14/15)
    sim::SampleSet deploy_total_ms;   ///< engine total per deployment
    std::vector<sim::SimTime> deployment_start_times;  ///< for fig 10 binning
    workload::Trace trace;
    std::size_t failures = 0;
};

[[nodiscard]] DeploymentExperimentResult
run_deployment_experiment(const DeploymentExperimentOptions& options);

/// Run one experiment per options entry across a shared ThreadPool -- one
/// independent Simulation per task, so the kernel stays single-threaded and
/// deterministic while replications use all cores. Results come back in
/// input (seed) order, so merging them is reproducible regardless of which
/// replica finished first.
[[nodiscard]] std::vector<DeploymentExperimentResult>
run_deployment_replications(const std::vector<DeploymentExperimentOptions>& options);

/// Fig. 13: time to pull one service's image set onto a cold node, from its
/// home registry or through the private in-network registry.
struct PullMeasurement {
    double pull_ms = 0;
    sim::Bytes bytes = 0;
    std::size_t layers_downloaded = 0;
    std::size_t layers_cached = 0;
};
[[nodiscard]] PullMeasurement measure_pull(const std::string& service_key,
                                           bool private_registry,
                                           const std::string& pre_cached_service = "",
                                           std::uint64_t seed = 1);

/// Fig. 16: request time with the instance already running.
[[nodiscard]] sim::SampleSet measure_warm_requests(const std::string& cluster_kind,
                                                   const std::string& service_key,
                                                   int requests = 50,
                                                   std::uint64_t seed = 1);

/// Bench banner: experiment id, what the paper reports, how we reproduce it.
void print_header(const std::string& experiment, const std::string& paper_claim);

/// True when TEDGE_TRACE_ONLY is set in the environment: bench mains skip
/// the heavy figure tables / google-benchmark loops and only produce the
/// trace + metrics artifacts (used by CI to upload a trace without paying
/// for the full table).
[[nodiscard]] bool trace_only_mode();

/// True when either TEDGE_TRACE or TEDGE_TRACE_ONLY is set: the bench adds
/// a traced run and writes the artifacts. Off by default so the standard
/// bench output stays byte-identical with tracing disabled.
[[nodiscard]] bool trace_requested();

/// Write `<prefix>.trace.json` (Chrome trace_event; load in chrome://tracing
/// or Perfetto) and `<prefix>.metrics.txt` (flat metrics dump including the
/// per-phase histograms), then print a per-phase span summary to stdout.
void write_trace_artifacts(const std::string& prefix, const sim::Tracer& tracer,
                           const sim::MetricsRegistry& metrics);

/// Predicate-driven drain: execute events until `done()` returns true, then
/// finish the current `slice` so the clock lands where the old
/// `while (!done) run_until(now + slice)` polling loop left it -- phase
/// boundaries and downstream trace offsets stay bit-identical while the
/// drain itself no longer grinds through empty slices.
void drain_phase(sim::Simulation& sim, const std::function<bool()>& done,
                 sim::SimTime slice = sim::seconds(1));

} // namespace tedge::bench
