// Fig. 14: wait time (median) until the services are ready after being
// scaled up -- the controller continuously probes the service port before
// installing the flows. For ResNet the waiting time alone accounts for more
// than a fourth of the total time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig14() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 14 -- wait-until-ready (port probing) after SCALE UP",
        "small for web services; for ResNet the wait alone is > 1/4 of the "
        "total time (model load)");

    TextTable table({"Service", "Cluster", "wait median [ms]", "total median [ms]",
                     "wait/total", "paper"});
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        for (const auto& cluster : {"docker", "k8s"}) {
            tedge::bench::DeploymentExperimentOptions options;
            options.cluster_kind = cluster;
            options.service_key = service_key;
            options.pre_create = true;
            const auto result = tedge::bench::run_deployment_experiment(options);
            const double wait = result.wait_ready_ms.median();
            const double total = result.deploy_total_ms.median();
            table.add_row(
                {tedge::testbed::service_by_key(service_key).display_name, cluster,
                 TextTable::num(wait, 0), TextTable::num(total, 0),
                 TextTable::num(wait / total * 100.0, 0) + "%",
                 std::string(service_key) == "resnet" ? "> 25% of total" : "small"});
        }
    }
    std::cout << table.str();
}

void BM_PortProbeRoundTrip(benchmark::State& state) {
    // Cost of one scheduling decision + probe round on a warm testbed.
    std::uint64_t seed = 30;
    for (auto _ : state) {
        auto samples = tedge::bench::measure_warm_requests("docker", "asm", 5, seed++);
        benchmark::DoNotOptimize(samples);
    }
}
BENCHMARK(BM_PortProbeRoundTrip)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig14();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
