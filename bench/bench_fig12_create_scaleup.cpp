// Fig. 12: total time (median) for the first request when services need to
// be *created AND scaled up*. Creating the containers adds around 100 ms to
// the response time -- except for ResNet, whose large start-time variance
// swallows the difference.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig12() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 12 -- total time (median) to CREATE + SCALE UP, 42 instances",
        "adds ~100 ms over fig. 11 -- except ResNet (no visible overhead)");

    TextTable table({"Service", "Cluster", "create+scale [s]", "scale only [s]",
                     "delta [ms]", "paper"});
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        for (const auto& cluster : {"docker", "k8s"}) {
            // Pool three seeds: at 42 concurrent deployments the CPU
            // contention between container starts adds +-0.2 s of run-to-run
            // noise, which is exactly why the paper sees "no overhead" for
            // ResNet -- the Create cost drowns in start-time variance.
            // The six replications (3 seeds x {create, scale-only}) are
            // independent simulations, so they run across the thread pool
            // and merge back in seed order.
            std::vector<bench::DeploymentExperimentOptions> runs;
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                for (const bool pre_create : {false, true}) {
                    bench::DeploymentExperimentOptions options;
                    options.cluster_kind = cluster;
                    options.service_key = service_key;
                    options.seed = seed;
                    options.pre_create = pre_create;
                    runs.push_back(options);
                }
            }
            const auto results = bench::run_deployment_replications(runs);
            sim::SampleSet with_create_samples;
            sim::SampleSet scale_only_samples;
            for (std::size_t i = 0; i < results.size(); ++i) {
                (runs[i].pre_create ? scale_only_samples : with_create_samples)
                    .merge(results[i].first_request_ms);
            }
            const double a = with_create_samples.median();
            const double b = scale_only_samples.median();
            // On Kubernetes the ~100 ms Create cost overlaps with (and
            // drowns in) the control-loop latency variance, just like the
            // paper observes for ResNet on Docker.
            const bool hidden =
                std::string(cluster) == "k8s" || std::string(service_key) == "resnet";
            table.add_row({tedge::testbed::service_by_key(service_key).display_name,
                           cluster, TextTable::num(a / 1e3, 2),
                           TextTable::num(b / 1e3, 2), TextTable::num(a - b, 0),
                           hidden ? "~0 (hidden in variance)" : "~ +100 ms"});
        }
    }
    std::cout << table.str();
}

// Traced replica of the BM_ scenario: one small create+scale-up run with
// the lifecycle tracer armed, exported as fig12.trace.json plus the
// per-phase histograms (phase.pull_ms / create_ms / scale_up_ms /
// wait_ready_ms / deploy_total_ms) in fig12.metrics.txt.
void emit_fig12_trace() {
    using namespace tedge;
    sim::Tracer tracer;
    sim::MetricsRegistry metrics;
    bench::DeploymentExperimentOptions options;
    options.cluster_kind = "docker";
    options.service_key = "asm";
    options.pre_create = false;
    options.num_services = 6;
    options.num_requests = 150;
    options.horizon = sim::seconds(60);
    options.seed = 70;
    options.tracer = &tracer;
    options.metrics = &metrics;
    options.shards = bench::shards_from_env();
    const auto result = bench::run_deployment_experiment(options);
    std::cout << "\ntraced run: " << result.first_request_ms.count()
              << " cold + " << result.warm_request_ms.count()
              << " warm requests, " << result.failures << " failures\n";
    bench::write_trace_artifacts("fig12", tracer, metrics);
}

void BM_CreateScaleUpDockerAsm(benchmark::State& state) {
    std::uint64_t seed = 70;
    for (auto _ : state) {
        tedge::bench::DeploymentExperimentOptions options;
        options.cluster_kind = "docker";
        options.service_key = "asm";
        options.pre_create = false;
        options.num_services = 6;
        options.num_requests = 150;
        options.horizon = tedge::sim::seconds(60);
        options.seed = seed++;
        auto result = tedge::bench::run_deployment_experiment(options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_CreateScaleUpDockerAsm)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    if (tedge::bench::trace_only_mode()) {
        emit_fig12_trace(); // CI artifact path: skip table + benchmark loops
        return 0;
    }
    print_fig12();
    // Opt-in (TEDGE_TRACE=1): keeps the default output byte-identical
    // across runs with tracing disabled.
    if (tedge::bench::trace_requested()) emit_fig12_trace();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
