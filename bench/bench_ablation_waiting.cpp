// Ablation (paper §IV-A): on-demand deployment WITH waiting vs WITHOUT
// waiting. With a warm instance in a farther edge, the without-waiting
// policy answers the first request from there immediately while the optimal
// edge deploys in the background; with-waiting holds the first request until
// the nearby instance is up.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "workload/http_client.hpp"

namespace {

struct WaitingResult {
    double first_request_ms = 0;
    double optimal_ready_s = 0;   ///< when the near-edge instance was serving
    bool first_from_far = false;
};

WaitingResult run(bool wait, std::uint64_t seed) {
    using namespace tedge;
    testbed::C3Options c3;
    c3.seed = seed;
    c3.with_k8s = false;
    c3.with_far_edge = true;
    c3.controller.scheduler = sdn::kProximityScheduler;
    c3.controller.scheduler_params["wait"] = yamlite::Node{wait};
    c3.controller.scale_down_idle = false;
    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    const auto& nginx = testbed::service_by_key("nginx");
    const auto* annotated = platform.service_registry().lookup(nginx.address);

    // Warm instance at the far edge.
    bool warm = false;
    platform.deployment_engine().ensure(
        *testbed->far_edge, annotated->spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) { warm = ok; });
    platform.simulation().run_until(sim::seconds(120));
    if (!warm) throw std::runtime_error("far-edge warmup failed");
    platform.deployment_engine().clear_records();

    WaitingResult result;
    bool done = false;
    const sim::SimTime t0 = platform.simulation().now();
    platform.http_request(testbed->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              if (!r.ok) throw std::runtime_error(r.error);
                              result.first_request_ms = r.time_total.ms();
                              result.first_from_far =
                                  r.server_node == testbed->far_edge_host;
                              done = true;
                          });
    bench::drain_phase(platform.simulation(), [&] { return done; });
    // Wait until the near edge serves (or give up after two minutes).
    const sim::SimTime deadline = t0 + sim::seconds(120);
    bench::drain_phase(
        platform.simulation(),
        [&] {
            return platform.simulation().now() >= deadline ||
                   !testbed->docker->ready_instances(annotated->spec.name).empty();
        },
        sim::milliseconds(100));
    result.optimal_ready_s = (platform.simulation().now() - t0).seconds();
    return result;
}

void print_ablation() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Ablation -- on-demand deployment WITH vs WITHOUT waiting (paper §IV-A)",
        "without waiting: first request answered from a farther edge at once "
        "while the optimal edge deploys in parallel; with waiting: the first "
        "request is held until the nearby instance is up");

    const auto with_wait = run(true, 11);
    const auto without_wait = run(false, 11);

    TextTable table({"Policy", "first request [ms]", "answered from",
                     "optimal edge serving after [s]"});
    table.add_row({"with waiting", TextTable::num(with_wait.first_request_ms, 0),
                   with_wait.first_from_far ? "far edge" : "near edge",
                   TextTable::num(with_wait.optimal_ready_s, 2)});
    table.add_row({"without waiting",
                   TextTable::num(without_wait.first_request_ms, 0),
                   without_wait.first_from_far ? "far edge" : "near edge",
                   TextTable::num(without_wait.optimal_ready_s, 2)});
    std::cout << table.str();
}

void BM_WithoutWaitingFirstRequest(benchmark::State& state) {
    std::uint64_t seed = 60;
    for (auto _ : state) {
        auto r = run(false, seed++);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_WithoutWaitingFirstRequest)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
