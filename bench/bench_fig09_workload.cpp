// Fig. 9: distribution of 1708 requests to 42 edge services over five
// minutes (regenerated from the published marginals of bigFlows.pcap).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "simcore/histogram.hpp"
#include "workload/bigflows.hpp"

namespace {

void print_fig09() {
    using namespace tedge;
    bench::print_header(
        "Fig. 9 -- request distribution over the five-minute trace",
        "1708 requests to 42 services; every service receives >= 20 requests; "
        "heavy-tailed popularity");

    const auto trace = workload::synthesize_bigflows({});
    const auto per_service = trace.requests_per_service();

    std::cout << "requests: " << trace.size() << " services: " << per_service.size()
              << " horizon: " << trace.horizon().seconds() << "s\n";
    const auto minmax = std::minmax_element(per_service.begin(), per_service.end());
    std::cout << "requests per service: min=" << *minmax.first
              << " max=" << *minmax.second << "\n\n";

    sim::TimeSeriesBins bins(sim::seconds(300), sim::seconds(10));
    for (const auto& event : trace.events()) bins.add(event.at);
    std::cout << "requests per 10 s bucket:\n" << bins.ascii(50) << "\n";

    workload::TextTable table({"service rank", "requests"});
    auto sorted = per_service;
    std::sort(sorted.rbegin(), sorted.rend());
    for (std::size_t i = 0; i < sorted.size(); i += 7) {
        table.add_row({std::to_string(i + 1), std::to_string(sorted[i])});
    }
    std::cout << "\npopularity (sorted, every 7th rank):\n" << table.str();
}

// Traced replay of the fig. 9 workload (42 services / 1708 requests / 5 min)
// against the C3 testbed, exported as fig09.trace.json + fig09.metrics.txt
// (per-phase histograms plus the request-level workload.request_ms one).
void emit_fig09_trace() {
    using namespace tedge;
    sim::Tracer tracer;
    sim::MetricsRegistry metrics;
    bench::DeploymentExperimentOptions options; // fig-9 defaults
    options.tracer = &tracer;
    options.metrics = &metrics;
    options.shards = bench::shards_from_env();
    const auto result = bench::run_deployment_experiment(options);
    std::cout << "\ntraced run: " << result.first_request_ms.count()
              << " cold + " << result.warm_request_ms.count()
              << " warm requests, " << result.failures << " failures\n";
    bench::write_trace_artifacts("fig09", tracer, metrics);
}

void BM_SynthesizeBigFlows(benchmark::State& state) {
    std::uint64_t seed = 1;
    for (auto _ : state) {
        tedge::workload::BigFlowsOptions options;
        options.seed = seed++;
        auto trace = tedge::workload::synthesize_bigflows(options);
        benchmark::DoNotOptimize(trace);
    }
}
BENCHMARK(BM_SynthesizeBigFlows);

void BM_ZipfSample(benchmark::State& state) {
    tedge::sim::Rng rng(7);
    tedge::sim::ZipfDistribution zipf(42, 0.9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
}
BENCHMARK(BM_ZipfSample);

} // namespace

int main(int argc, char** argv) {
    if (tedge::bench::trace_only_mode()) {
        emit_fig09_trace(); // CI artifact path: skip table + benchmark loops
        return 0;
    }
    print_fig09();
    // Opt-in (TEDGE_TRACE=1): keeps the default output byte-identical
    // across runs with tracing disabled.
    if (tedge::bench::trace_requested()) emit_fig09_trace();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
