// Fig. 15: wait time (median) until the services are ready after being
// created + scaled up (the Create phase shifts work earlier; the port-probe
// wait itself stays in the same range as fig. 14).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig15() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 15 -- wait-until-ready (port probing) after CREATE + SCALE UP",
        "same shape as fig. 14; ResNet dominated by model load");

    TextTable table({"Service", "Cluster", "wait median [ms]", "total median [ms]",
                     "wait/total"});
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        for (const auto& cluster : {"docker", "k8s"}) {
            tedge::bench::DeploymentExperimentOptions options;
            options.cluster_kind = cluster;
            options.service_key = service_key;
            options.pre_create = false; // Create + Scale Up
            const auto result = tedge::bench::run_deployment_experiment(options);
            const double wait = result.wait_ready_ms.median();
            const double total = result.deploy_total_ms.median();
            table.add_row({tedge::testbed::service_by_key(service_key).display_name,
                           cluster, TextTable::num(wait, 0), TextTable::num(total, 0),
                           TextTable::num(wait / total * 100.0, 0) + "%"});
        }
    }
    std::cout << table.str();
}

void BM_EnsureDeployedAsmDocker(benchmark::State& state) {
    std::uint64_t seed = 90;
    for (auto _ : state) {
        tedge::bench::DeploymentExperimentOptions options;
        options.cluster_kind = "docker";
        options.service_key = "asm";
        options.pre_create = false;
        options.num_services = 4;
        options.num_requests = 100;
        options.horizon = tedge::sim::seconds(60);
        options.seed = seed++;
        auto result = tedge::bench::run_deployment_experiment(options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_EnsureDeployedAsmDocker)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig15();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
