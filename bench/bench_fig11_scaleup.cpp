// Fig. 11: total time (median) for the first client request when services
// only need to be *scaled up* (image cached, containers/Deployment created):
// Docker well under one second, Kubernetes around three seconds, ResNet
// significantly longer on both.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig11() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 11 -- total time (median) to SCALE UP, 42 instances per run",
        "Docker < 1 s for web services; Kubernetes ~ 3 s; ResNet much longer; "
        "Asm vs Nginx: no notable difference");

    TextTable table({"Service", "Cluster", "median [s]", "p25 [s]", "p75 [s]",
                     "n", "paper"});
    const std::vector<std::pair<std::string, std::string>> paper_notes = {
        {"docker", "< 1 s"}, {"k8s", "~ 3 s"}};
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        for (const auto& [cluster, note] : paper_notes) {
            tedge::bench::DeploymentExperimentOptions options;
            options.cluster_kind = cluster;
            options.service_key = service_key;
            options.pre_create = true; // Scale Up only
            const auto result = tedge::bench::run_deployment_experiment(options);
            const auto& samples = result.first_request_ms;
            table.add_row({tedge::testbed::service_by_key(service_key).display_name,
                           cluster,
                           TextTable::num(samples.median() / 1e3, 2),
                           TextTable::num(samples.p25() / 1e3, 2),
                           TextTable::num(samples.p75() / 1e3, 2),
                           std::to_string(samples.count()),
                           std::string(note) +
                               (std::string(service_key) == "resnet" ? " (+model load)"
                                                                     : "")});
        }
    }
    std::cout << table.str();
}

void BM_ScaleUpDockerNginx(benchmark::State& state) {
    std::uint64_t seed = 50;
    for (auto _ : state) {
        tedge::bench::DeploymentExperimentOptions options;
        options.cluster_kind = "docker";
        options.service_key = "nginx";
        options.num_services = 6;
        options.num_requests = 150;
        options.horizon = tedge::sim::seconds(60);
        options.seed = seed++;
        auto result = tedge::bench::run_deployment_experiment(options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ScaleUpDockerNginx)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig11();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
