// Timer-wheel backend: differential determinism against the heap backend,
// wheel-specific edge cases (cascading, deadline peeks, rewind-after-clear),
// and the EventQueue::clear() cold path on both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace tedge;
using sim::EventHandle;
using sim::EventQueue;
using sim::QueueBackend;
using sim::SimTime;

std::string backend_name(QueueBackend backend) {
    return backend == QueueBackend::kHeap ? "heap" : "wheel";
}

// ------------------------------------------------------------ differential

/// One fired event as observed by the caller: (timestamp, id, daemon flag).
using PopRecord = std::tuple<std::int64_t, int, bool>;

/// Drive a raw EventQueue through a seeded random schedule/cancel/pop
/// workload and record the exact pop sequence. Delays mix five magnitudes --
/// same-instant collisions up to ~17 simulated minutes -- so wheel entries
/// exercise every level and the cascade path repeatedly.
std::vector<PopRecord> run_random_workload(QueueBackend backend,
                                           std::uint32_t seed) {
    EventQueue queue(backend);
    std::mt19937 rng(seed);
    std::vector<PopRecord> popped;
    std::vector<EventHandle> handles;
    std::int64_t now = 0;
    int next_id = 0;

    const auto random_delay = [&]() -> std::int64_t {
        switch (rng() % 5) {
            case 0: return 0; // same-instant pile-up
            case 1: return static_cast<std::int64_t>(rng() % 64);
            case 2: return static_cast<std::int64_t>(rng() % 4096) * 250;
            case 3: return static_cast<std::int64_t>(rng() % 1024) * 1'000'000;
            default:
                return static_cast<std::int64_t>(rng() % 1024) * 1'000'000'000;
        }
    };

    for (int round = 0; round < 300; ++round) {
        const std::size_t pushes = rng() % 8;
        for (std::size_t i = 0; i < pushes; ++i) {
            const int id = next_id++;
            const bool daemon = rng() % 4 == 0;
            const SimTime at{now + random_delay()};
            handles.push_back(queue.push(
                at,
                [&popped, id, daemon, at] {
                    popped.emplace_back(at.ns(), id, daemon);
                },
                daemon));
        }
        const std::size_t cancels = rng() % 3;
        for (std::size_t i = 0; i < cancels && !handles.empty(); ++i) {
            handles[rng() % handles.size()].cancel();
        }
        if (round % 7 == 0 && !queue.empty()) {
            // Exercise the non-destructive minimum (heap drop_dead / wheel
            // min cache) interleaved with later smaller-timestamp pushes.
            popped.emplace_back(queue.next_time().ns(), -1, false);
        }
        std::size_t pops = rng() % 6;
        while (pops-- > 0 && !queue.empty()) {
            auto [at, cb] = queue.pop();
            now = at.ns();
            cb();
        }
    }
    while (!queue.empty()) {
        auto [at, cb] = queue.pop();
        now = at.ns();
        cb();
    }
    EXPECT_EQ(queue.size(), 0u);
    return popped;
}

TEST(TimerWheelDifferential, PopSequenceMatchesHeapExactly) {
    for (const std::uint32_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        const auto heap = run_random_workload(QueueBackend::kHeap, seed);
        const auto wheel = run_random_workload(QueueBackend::kWheel, seed);
        ASSERT_EQ(heap.size(), wheel.size()) << "seed " << seed;
        for (std::size_t i = 0; i < heap.size(); ++i) {
            ASSERT_EQ(heap[i], wheel[i]) << "seed " << seed << " index " << i;
        }
    }
}

TEST(TimerWheelDifferential, SimulationReferenceScheduleMatches) {
    // A Simulation-level workload with periodics, nested schedules and
    // cancellations must execute identically on both backends.
    const auto run = [](QueueBackend backend) {
        sim::Simulation simulation(backend);
        std::vector<std::pair<std::int64_t, int>> order;
        const auto mark = [&](int id) {
            order.emplace_back(simulation.now().ns(), id);
        };
        auto periodic = simulation.schedule_periodic(
            sim::milliseconds(250), [&] { mark(1); }, /*daemon=*/true);
        simulation.schedule(sim::seconds(1), [&] {
            mark(2);
            simulation.schedule(sim::milliseconds(1), [&] { mark(3); });
            simulation.schedule(SimTime::zero(), [&] { mark(4); });
        });
        auto doomed = simulation.schedule(sim::seconds(2), [&] { mark(99); });
        simulation.schedule(sim::milliseconds(1500), [&doomed, &mark] {
            mark(5);
            doomed.cancel();
        });
        simulation.schedule(sim::seconds(3), [&] { mark(6); });
        const auto executed = simulation.run();
        periodic.cancel();
        return std::make_pair(executed, order);
    };
    const auto heap = run(QueueBackend::kHeap);
    const auto wheel = run(QueueBackend::kWheel);
    EXPECT_EQ(heap.first, wheel.first);
    ASSERT_EQ(heap.second.size(), wheel.second.size());
    EXPECT_EQ(heap.second, wheel.second);
}

// --------------------------------------------------------- wheel specifics

TEST(TimerWheel, SameInstantFifoAcrossCascadeLevels) {
    // First event files far from the reference instant (high wheel level);
    // after the wheel advances, a second event for the same instant files
    // near it (low level). Seq order must still win.
    EventQueue queue(QueueBackend::kWheel);
    std::vector<int> order;
    constexpr std::int64_t kFar = 3'000'000'000; // 3 s: level > 0 from t=0
    queue.push(SimTime{kFar}, [&] { order.push_back(1); });
    queue.push(SimTime{1}, [&] { order.push_back(0); });
    (void)queue.pop().second(); // fires t=1, advances the reference instant
    queue.push(SimTime{kFar}, [&] { order.push_back(2); });
    while (!queue.empty()) queue.pop().second();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerWheel, PushEarlierThanPeekedMinimum) {
    // run_until consults next_time(), stops short of it, and later events may
    // be pushed *below* the pending minimum. The wheel must not have
    // advanced its reference instant during the peek.
    for (const auto backend : {QueueBackend::kHeap, QueueBackend::kWheel}) {
        sim::Simulation simulation(backend);
        std::vector<int> order;
        simulation.schedule_at(sim::seconds(10), [&] { order.push_back(1); });
        simulation.run_until(sim::seconds(1)); // peeks 10s, stops at 1s
        EXPECT_EQ(simulation.now(), sim::seconds(1));
        simulation.schedule_at(sim::seconds(2), [&] { order.push_back(0); });
        simulation.run();
        EXPECT_EQ(order, (std::vector<int>{0, 1})) << backend_name(backend);
        EXPECT_EQ(simulation.now(), sim::seconds(10)) << backend_name(backend);
    }
}

TEST(TimerWheel, CancelledMinimumIsSkippedByNextTime) {
    for (const auto backend : {QueueBackend::kHeap, QueueBackend::kWheel}) {
        EventQueue queue(backend);
        auto first = queue.push(sim::seconds(1), [] {});
        queue.push(sim::seconds(2), [] {});
        EXPECT_EQ(queue.next_time(), sim::seconds(1));
        first.cancel();
        EXPECT_EQ(queue.next_time(), sim::seconds(2)) << backend_name(backend);
        EXPECT_EQ(queue.pop().first, sim::seconds(2)) << backend_name(backend);
    }
}

TEST(TimerWheel, RejectsTimestampBeforeLastPop) {
    EventQueue queue(QueueBackend::kWheel);
    queue.push(sim::seconds(5), [] {});
    (void)queue.pop();
    EXPECT_THROW(queue.push(sim::seconds(4), [] {}), std::invalid_argument);
    EXPECT_THROW(queue.push(SimTime{-1}, [] {}), std::invalid_argument);
    queue.push(sim::seconds(5), [] {}); // same instant is legal
    EXPECT_EQ(queue.size(), 1u);
}

TEST(TimerWheel, DistantTimersAcrossManyLevels) {
    // Timestamps spanning ns..~11.5 days exercise most levels of the wheel.
    EventQueue queue(QueueBackend::kWheel);
    std::vector<std::int64_t> ats;
    std::int64_t at = 1;
    while (at < 1'000'000'000'000'000) { // 10^15 ns
        ats.push_back(at);
        at *= 10;
    }
    std::mt19937 rng(7);
    auto shuffled = ats;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (const auto t : shuffled) {
        queue.push(SimTime{t}, [] {});
    }
    std::vector<std::int64_t> popped;
    while (!queue.empty()) popped.push_back(queue.pop().first.ns());
    EXPECT_EQ(popped, ats);
}

TEST(TimerWheel, BackendAccessorsReport) {
    sim::Simulation heap_sim(QueueBackend::kHeap);
    sim::Simulation wheel_sim(QueueBackend::kWheel);
    EXPECT_EQ(heap_sim.backend(), QueueBackend::kHeap);
    EXPECT_EQ(wheel_sim.backend(), QueueBackend::kWheel);
}

// ------------------------------------------------------------------ clear()

class EventQueueClearTest : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(EventQueueClearTest, DropsLiveDaemonAndCancelledMixes) {
    EventQueue queue(GetParam());
    int fired = 0;
    auto user = queue.push(sim::seconds(1), [&] { ++fired; });
    auto daemon = queue.push(sim::seconds(2), [&] { ++fired; }, /*daemon=*/true);
    auto cancelled = queue.push(sim::seconds(3), [&] { ++fired; });
    cancelled.cancel();
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_TRUE(queue.has_user_events());

    queue.clear();

    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.has_user_events());
    EXPECT_EQ(fired, 0);
    EXPECT_THROW(static_cast<void>(queue.next_time()), std::logic_error);
    EXPECT_THROW(queue.pop(), std::logic_error);
    // Counting is unaffected: total_scheduled is a lifetime counter.
    EXPECT_EQ(queue.total_scheduled(), 3u);
    (void)user;
    (void)daemon;
}

TEST_P(EventQueueClearTest, HandlesToClearedEventsAreInert) {
    EventQueue queue(GetParam());
    auto live = queue.push(sim::seconds(1), [] {});
    auto daemon = queue.push(sim::seconds(2), [] {}, /*daemon=*/true);
    EXPECT_TRUE(live.pending());
    EXPECT_TRUE(daemon.pending());

    queue.clear();

    EXPECT_FALSE(live.pending());
    EXPECT_FALSE(daemon.pending());
    // cancel() after clear must be a no-op -- in particular it must not
    // perturb live counts or a new tenant reusing the slot.
    live.cancel();
    daemon.cancel();
    EXPECT_EQ(queue.size(), 0u);

    int fired = 0;
    queue.push(sim::seconds(5), [&] { ++fired; });
    live.cancel(); // stale generation: still a no-op
    EXPECT_EQ(queue.size(), 1u);
    auto [at, cb] = queue.pop();
    cb();
    EXPECT_EQ(at, sim::seconds(5));
    EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueClearTest, QueueIsReusableAfterClearIncludingEarlierTimes) {
    EventQueue queue(GetParam());
    queue.push(sim::seconds(100), [] {});
    (void)queue.pop(); // wheel reference instant now 100 s
    queue.push(sim::seconds(200), [] {});
    queue.clear();
    // After clear the queue is empty, so scheduling may rewind to any
    // non-negative time again (a fresh Simulation run from t=0).
    std::vector<std::int64_t> order;
    queue.push(sim::seconds(2), [&] { order.push_back(2); });
    queue.push(sim::seconds(1), [&] { order.push_back(1); });
    while (!queue.empty()) queue.pop().second();
    EXPECT_EQ(order, (std::vector<std::int64_t>{1, 2}));
}

TEST_P(EventQueueClearTest, ClearOnEmptyQueueIsNoOp) {
    EventQueue queue(GetParam());
    queue.clear();
    EXPECT_TRUE(queue.empty());
    queue.push(sim::seconds(1), [] {});
    queue.clear();
    queue.clear(); // idempotent
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.total_scheduled(), 1u);
}

TEST_P(EventQueueClearTest, ClearAfterPartialDrainResetsCounters) {
    EventQueue queue(GetParam());
    for (int i = 0; i < 8; ++i) {
        queue.push(sim::seconds(i + 1), [] {}, /*daemon=*/i % 2 == 0);
    }
    for (int i = 0; i < 3; ++i) (void)queue.pop();
    auto doomed = queue.push(sim::seconds(30), [] {});
    doomed.cancel();
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.has_user_events());
    // Slots freed by clear are recycled for new pushes.
    auto handle = queue.push(sim::seconds(1), [] {});
    EXPECT_TRUE(handle.pending());
    EXPECT_EQ(queue.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueClearTest,
                         ::testing::Values(QueueBackend::kHeap,
                                           QueueBackend::kWheel),
                         [](const auto& info) {
                             return backend_name(info.param);
                         });

// ------------------------------------------------------------- reserve()

TEST(EventQueueReserve, ReserveDoesNotChangeObservableState) {
    for (const auto backend : {QueueBackend::kHeap, QueueBackend::kWheel}) {
        EventQueue queue(backend);
        queue.push(sim::seconds(2), [] {});
        queue.reserve(10'000);
        queue.push(sim::seconds(1), [] {});
        EXPECT_EQ(queue.size(), 2u) << backend_name(backend);
        EXPECT_EQ(queue.next_time(), sim::seconds(1)) << backend_name(backend);
        EXPECT_EQ(queue.pop().first, sim::seconds(1)) << backend_name(backend);
        EXPECT_EQ(queue.pop().first, sim::seconds(2)) << backend_name(backend);
    }
}

TEST(EventQueueReserve, SimulationForwardsReserve) {
    sim::Simulation simulation;
    simulation.reserve_events(4096);
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
        simulation.schedule(sim::milliseconds(i), [&] { ++fired; });
    }
    simulation.run();
    EXPECT_EQ(fired, 100);
}

} // namespace
