// Tracer + MetricsRegistry tests: zero perturbation when disabled, the
// cold-start span tree over a real platform (packet-in -> schedule -> pull
// -> create -> start -> ready -> flow install), deterministic export, and
// metrics registration/dump behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/edge_platform.hpp"
#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sim {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------ unit level

TEST(Tracer, DisabledTracerRecordsNothing) {
    Simulation simulation;
    Tracer tracer(simulation);
    // Attached but not enabled: the kernel must not see it and begin/end
    // must be no-ops returning 0.
    EXPECT_EQ(simulation.tracer(), nullptr);
    EXPECT_EQ(tracer.begin("x"), 0u);
    tracer.instant("y");
    tracer.end(0);
    EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, ScopeAndPropagationCarryContextAcrossEvents) {
    Simulation simulation;
    Tracer tracer(simulation);
    tracer.enable();

    const RequestId req = tracer.new_request();
    const SpanId root = tracer.begin("root", TraceContext{req, 0});
    SpanId inner = 0;
    {
        const Tracer::Scope scope(&tracer, root);
        // Scheduled inside the scope: the event must run with `root` as the
        // ambient parent even though it executes later.
        simulation.schedule(milliseconds(5), [&] { inner = tracer.begin("inner"); });
    }
    // Outside the scope the ambient context is empty again.
    EXPECT_TRUE(tracer.current().empty());
    simulation.run();
    tracer.end(inner);
    tracer.end(root);

    ASSERT_NE(inner, 0u);
    const TraceSpan& inner_span = tracer.spans()[inner - 1];
    EXPECT_EQ(inner_span.parent, root);
    EXPECT_EQ(inner_span.request, req);
    EXPECT_EQ(inner_span.start, milliseconds(5));
}

TEST(Tracer, SpanCapCountsDropped) {
    Simulation simulation;
    Tracer tracer(simulation);
    tracer.enable();
    tracer.set_max_spans(2);
    EXPECT_NE(tracer.begin("a"), 0u);
    EXPECT_NE(tracer.begin("b"), 0u);
    EXPECT_EQ(tracer.begin("c"), 0u);
    EXPECT_EQ(tracer.dropped(), 1u);
    EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(MetricsRegistry, CountersGaugesHistogramsAndDump) {
    MetricsRegistry metrics;
    metrics.counter("b.count").inc();
    metrics.counter("b.count").inc(4);
    metrics.gauge("a.level").set(2.5);
    metrics.histogram("c.ms", 0, 100, 10).add(15);
    metrics.histogram("c.ms", 0, 100, 10).add(150); // same instance: overflow
    EXPECT_EQ(metrics.counter("b.count").value(), 5u);
    EXPECT_EQ(metrics.size(), 3u);
    ASSERT_NE(metrics.find_counter("b.count"), nullptr);
    EXPECT_EQ(metrics.find_counter("missing"), nullptr);
    ASSERT_NE(metrics.find_histogram("c.ms"), nullptr);
    EXPECT_EQ(metrics.find_histogram("c.ms")->total(), 2u);

    const std::string dump = metrics.dump();
    // Name-ordered flat text, counters and gauges as `name value`.
    EXPECT_NE(dump.find("a.level 2.5"), std::string::npos);
    EXPECT_NE(dump.find("b.count 5"), std::string::npos);
    EXPECT_NE(dump.find("c.ms.count 2"), std::string::npos);
    EXPECT_NE(dump.find("c.ms.overflow 1"), std::string::npos);
    EXPECT_LT(dump.find("a.level"), dump.find("b.count"));
}

// -------------------------------------------------- platform level (fixture)

struct TracedPlatformFixture : ::testing::Test {
    /// Build the small one-edge platform and serve one cold-start request.
    /// When `tracing` is set, the tracer (and a registry) are armed before
    /// the controller starts.
    struct RunResult {
        std::uint64_t scheduled = 0;
        std::uint64_t executed = 0;
        SimTime finished;
        std::string trace_json;
        std::vector<TraceSpan> spans;
    };

    static RunResult run_cold_start(bool tracing) {
        core::EdgePlatform platform; // fixed default seed: deterministic
        Tracer tracer(platform.simulation());
        MetricsRegistry metrics;
        if (tracing) {
            tracer.enable();
            platform.simulation().set_metrics(&metrics);
        }

        const auto client = platform.add_client("client", net::Ipv4{10, 0, 1, 1});
        const auto edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        platform.add_cloud();
        auto& registry = platform.add_registry({.host = "docker.io"});
        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(10), 2);
        registry.put(image);
        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(20);
        app.service_median = sim::microseconds(200);
        app.port = 80;
        platform.add_app_profile("web:1", app);
        platform.add_docker_cluster("edge", edge);
        const net::ServiceAddress address{net::Ipv4{203, 0, 113, 9}, 80};
        platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
        platform.start_controller(edge);

        bool done = false;
        platform.http_request(client, address, 100,
                              [&](const net::HttpResult& r) {
                                  EXPECT_TRUE(r.ok) << r.error;
                                  done = true;
                              });
        platform.simulation().run_until(seconds(60));
        EXPECT_TRUE(done);

        RunResult result;
        result.scheduled = platform.simulation().total_scheduled();
        result.executed = platform.simulation().events_executed();
        result.finished = platform.simulation().now();
        result.trace_json = tracer.chrome_trace();
        result.spans = tracer.spans();
        return result;
    }

    static std::optional<TraceSpan> find_span(const std::vector<TraceSpan>& spans,
                                              const std::string& name) {
        const auto it = std::find_if(spans.begin(), spans.end(),
                                     [&](const TraceSpan& s) { return s.name == name; });
        return it == spans.end() ? std::nullopt : std::optional{*it};
    }

    /// Walk parent links from `span` up to the root; true if `ancestor` is
    /// on the path.
    static bool has_ancestor(const std::vector<TraceSpan>& spans,
                             const TraceSpan& span, SpanId ancestor) {
        for (SpanId p = span.parent; p != 0; p = spans[p - 1].parent) {
            if (p == ancestor) return true;
        }
        return false;
    }
};

TEST_F(TracedPlatformFixture, DisabledTracingIsZeroPerturbation) {
    // A disabled (attached but not enabled) tracer must not schedule kernel
    // events or alter the run in any way: identical event counts and clock.
    const RunResult off = run_cold_start(false);
    const RunResult on = run_cold_start(true);
    EXPECT_TRUE(off.spans.empty());
    EXPECT_GT(on.spans.size(), 0u);
    EXPECT_EQ(off.scheduled, on.scheduled);
    EXPECT_EQ(off.executed, on.executed);
    EXPECT_EQ(off.finished, on.finished);
}

TEST_F(TracedPlatformFixture, ColdStartSpanTreeIsOrderedAndLinked) {
    const RunResult run = run_cold_start(true);
    const auto& spans = run.spans;

    const auto packet_in = find_span(spans, "packet_in");
    const auto recall = find_span(spans, "flow_memory.recall");
    const auto decide = find_span(spans, "schedule.decide");
    const auto deploy = find_span(spans, "deploy");
    const auto pull = find_span(spans, "deploy.pull");
    const auto image = find_span(spans, "pull.image");
    const auto layer = find_span(spans, "pull.layer");
    const auto create = find_span(spans, "container.create");
    const auto start = find_span(spans, "container.start");
    const auto ready = find_span(spans, "ready");
    const auto install = find_span(spans, "flow.install");

    ASSERT_TRUE(packet_in && recall && decide && deploy && pull && image &&
                layer && create && start && ready && install);

    // All on the same request track.
    const RequestId req = packet_in->request;
    ASSERT_NE(req, 0u);
    for (const TraceSpan& span : spans) EXPECT_EQ(span.request, req);

    // Parent links: everything the packet-in caused descends from it.
    EXPECT_EQ(recall->parent, packet_in->id);
    EXPECT_EQ(decide->parent, packet_in->id);
    EXPECT_TRUE(has_ancestor(spans, *deploy, packet_in->id));
    EXPECT_EQ(pull->parent, deploy->id);
    EXPECT_TRUE(has_ancestor(spans, *image, pull->id));
    EXPECT_EQ(layer->parent, image->id);
    EXPECT_TRUE(has_ancestor(spans, *install, packet_in->id));

    // Lifecycle order with monotonic timestamps: packet-in -> decision ->
    // pull -> create -> start -> ready -> flow install.
    EXPECT_LE(packet_in->start, decide->start);
    EXPECT_LE(decide->start, pull->start);
    EXPECT_LE(pull->end, create->start);
    EXPECT_LE(create->end, start->start);
    EXPECT_LE(start->end, ready->start);
    EXPECT_LE(ready->start, install->start);
    // The packet-in span itself is the controller's synchronous handling;
    // the request's end-to-end cold start is the `deploy` span.
    EXPECT_LE(deploy->start, pull->start);
    EXPECT_LE(install->start, deploy->end + milliseconds(1));

    // Every span closed, with end >= start.
    for (const TraceSpan& span : spans) {
        EXPECT_FALSE(span.open) << span.name;
        EXPECT_GE(span.end, span.start) << span.name;
    }
}

TEST_F(TracedPlatformFixture, ExportIsDeterministicAcrossRuns) {
    const RunResult a = run_cold_start(true);
    const RunResult b = run_cold_start(true);
    EXPECT_FALSE(a.trace_json.empty());
    EXPECT_EQ(a.trace_json, b.trace_json); // byte-identical at the same seed
    EXPECT_NE(a.trace_json.find("\"packet_in\""), std::string::npos);
    EXPECT_NE(a.trace_json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(a.trace_json.find("\"ph\":\"i\""), std::string::npos);
}

} // namespace
} // namespace tedge::sim
