// Network substrate tests: addresses, flow tables, topology, shared links.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "simcore/simulation.hpp"

namespace tedge::net {
namespace {

using sim::milliseconds;
using sim::microseconds;
using sim::seconds;

// ---------------------------------------------------------------- address

TEST(Ipv4, ParseAndFormatRoundTrip) {
    const auto ip = Ipv4::parse("192.168.1.200");
    ASSERT_TRUE(ip);
    EXPECT_EQ(ip->str(), "192.168.1.200");
    EXPECT_EQ(Ipv4(192, 168, 1, 200), *ip);
}

class BadIpv4 : public ::testing::TestWithParam<const char*> {};

TEST_P(BadIpv4, ParseRejectsMalformed) {
    EXPECT_FALSE(Ipv4::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cases, BadIpv4,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1",
                                           "a.b.c.d", "1..2.3", "1.2.3.4 ",
                                           "-1.2.3.4", "1.2.3.4x"));

TEST(ServiceAddress, ParseVariants) {
    const auto tcp = ServiceAddress::parse("10.0.0.1:8080");
    ASSERT_TRUE(tcp);
    EXPECT_EQ(tcp->port, 8080);
    EXPECT_EQ(tcp->proto, Proto::kTcp);
    EXPECT_EQ(tcp->str(), "10.0.0.1:8080");

    const auto udp = ServiceAddress::parse("10.0.0.1:53/udp");
    ASSERT_TRUE(udp);
    EXPECT_EQ(udp->proto, Proto::kUdp);
    EXPECT_EQ(udp->str(), "10.0.0.1:53/udp");

    EXPECT_FALSE(ServiceAddress::parse("10.0.0.1"));
    EXPECT_FALSE(ServiceAddress::parse("10.0.0.1:99999"));
    EXPECT_FALSE(ServiceAddress::parse("10.0.0.1:80/sctp"));
}

TEST(ServiceAddress, HashAndEquality) {
    const ServiceAddress a{Ipv4{1, 2, 3, 4}, 80};
    const ServiceAddress b{Ipv4{1, 2, 3, 4}, 80};
    const ServiceAddress c{Ipv4{1, 2, 3, 4}, 81};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(std::hash<ServiceAddress>{}(a), std::hash<ServiceAddress>{}(b));
}

// --------------------------------------------------------------- flow table

Packet make_packet(Ipv4 src, Ipv4 dst, std::uint16_t dport) {
    Packet p;
    p.src_ip = src;
    p.dst_ip = dst;
    p.dst_port = dport;
    return p;
}

TEST(FlowTable, MatchesMostSpecificHighestPriority) {
    FlowTable table;
    FlowEntry broad;
    broad.match.dst_ip = Ipv4{10, 0, 0, 1};
    broad.priority = 100;
    broad.cookie = 1;
    table.install(broad, sim::SimTime::zero());

    FlowEntry narrow = broad;
    narrow.match.dst_port = 80;
    narrow.cookie = 2;
    table.install(narrow, sim::SimTime::zero());

    const auto hit = table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1}, 80),
                                  sim::SimTime::zero());
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->cookie, 2u); // more specific wins at equal priority

    FlowEntry high = broad;
    high.priority = 200;
    high.cookie = 3;
    table.install(high, milliseconds(1));
    const auto hit2 = table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1}, 80),
                                   milliseconds(1));
    ASSERT_TRUE(hit2);
    EXPECT_EQ(hit2->cookie, 3u); // priority beats specificity
}

TEST(FlowTable, WildcardsMatchAnything) {
    FlowTable table;
    FlowEntry any;
    any.priority = 1;
    any.cookie = 9;
    table.install(any, sim::SimTime::zero());
    const auto hit = table.lookup(make_packet(Ipv4{9, 9, 9, 9}, Ipv4{8, 8, 8, 8}, 443),
                                  sim::SimTime::zero());
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->cookie, 9u);
}

TEST(FlowTable, MissCountsAndHitCounts) {
    FlowTable table;
    EXPECT_FALSE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                              sim::SimTime::zero()));
    EXPECT_EQ(table.miss_count(), 1u);
    FlowEntry e;
    e.match.dst_port = 80;
    table.install(e, sim::SimTime::zero());
    EXPECT_TRUE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                             sim::SimTime::zero()));
    EXPECT_EQ(table.hit_count(), 1u);
}

TEST(FlowTable, IdleTimeoutExpiresUnusedEntries) {
    FlowTable table;
    FlowEntry e;
    e.match.dst_port = 80;
    e.idle_timeout = seconds(10);
    table.install(e, sim::SimTime::zero());

    // Used at t=5s: stays alive past 10s.
    EXPECT_TRUE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                             seconds(5)));
    EXPECT_TRUE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                             seconds(12)));
    // Idle from 12s: gone at 22s.
    EXPECT_FALSE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                              seconds(22)));
    EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, HardTimeoutExpiresEvenWhenBusy) {
    FlowTable table;
    FlowEntry e;
    e.match.dst_port = 80;
    e.hard_timeout = seconds(10);
    table.install(e, sim::SimTime::zero());
    for (int t = 1; t < 10; ++t) {
        EXPECT_TRUE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                                 seconds(t)));
    }
    EXPECT_FALSE(table.lookup(make_packet(Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}, 80),
                              seconds(10)));
}

TEST(FlowTable, RemovedCallbackReportsIdleVsHard) {
    FlowTable table;
    std::vector<std::pair<std::uint64_t, bool>> removed;
    table.set_removed_callback([&](const FlowEntry& entry, bool idle) {
        removed.emplace_back(entry.cookie, idle);
    });
    FlowEntry idle_entry;
    idle_entry.match.dst_port = 1;
    idle_entry.idle_timeout = seconds(5);
    idle_entry.cookie = 1;
    FlowEntry hard_entry;
    hard_entry.match.dst_port = 2;
    hard_entry.hard_timeout = seconds(5);
    hard_entry.cookie = 2;
    table.install(idle_entry, sim::SimTime::zero());
    table.install(hard_entry, sim::SimTime::zero());
    table.expire(seconds(6));
    ASSERT_EQ(removed.size(), 2u);
    for (const auto& [cookie, idle] : removed) {
        EXPECT_EQ(idle, cookie == 1);
    }
}

TEST(FlowTable, InstallOverwritesSameMatchAndPriority) {
    FlowTable table;
    FlowEntry e;
    e.match.dst_port = 80;
    e.cookie = 1;
    EXPECT_FALSE(table.install(e, sim::SimTime::zero()));
    e.cookie = 2;
    EXPECT_TRUE(table.install(e, sim::SimTime::zero()));
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.entries().front().cookie, 2u);
}

TEST(FlowTable, RemoveByCookieAndMatch) {
    FlowTable table;
    for (std::uint16_t port = 1; port <= 4; ++port) {
        FlowEntry e;
        e.match.dst_port = port;
        e.cookie = port % 2;
        table.install(e, sim::SimTime::zero());
    }
    EXPECT_EQ(table.remove_by_cookie(1), 2u);
    FlowMatch match;
    match.dst_port = 2;
    EXPECT_EQ(table.remove(match), 1u);
    EXPECT_EQ(table.size(), 1u);
}

TEST(FlowMatch, SpecificityCountsConcreteFields) {
    FlowMatch m;
    EXPECT_EQ(m.specificity(), 0);
    m.dst_ip = Ipv4{1, 2, 3, 4};
    m.dst_port = 80;
    EXPECT_EQ(m.specificity(), 2);
    EXPECT_NE(m.str().find("1.2.3.4"), std::string::npos);
}

// ---------------------------------------------------------------- topology

TEST(Topology, ShortestPathByLatency) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    const auto s1 = topo.add_switch("s1");
    const auto s2 = topo.add_switch("s2");
    const auto b = topo.add_host("b", Ipv4{10, 0, 0, 2});
    // Two routes a->b: via s1 (3 ms) and via s2 (10 ms).
    topo.add_link(a, s1, milliseconds(1), sim::gbit_per_sec(1));
    topo.add_link(s1, b, milliseconds(2), sim::mbit_per_sec(100));
    topo.add_link(a, s2, milliseconds(5), sim::gbit_per_sec(10));
    topo.add_link(s2, b, milliseconds(5), sim::gbit_per_sec(10));

    const auto path = topo.path(a, b);
    ASSERT_TRUE(path);
    EXPECT_EQ(path->latency, milliseconds(3));
    EXPECT_EQ(path->hops, 2);
    EXPECT_EQ(path->bottleneck, sim::mbit_per_sec(100));
    EXPECT_EQ(path->rtt(), milliseconds(6));
}

TEST(Topology, DisconnectedReturnsNullopt) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    const auto b = topo.add_host("b", Ipv4{10, 0, 0, 2});
    EXPECT_FALSE(topo.path(a, b));
    EXPECT_THROW(static_cast<void>(topo.latency(a, b)), std::runtime_error);
}

TEST(Topology, SelfPathIsZero) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    const auto path = topo.path(a, a);
    ASSERT_TRUE(path);
    EXPECT_EQ(path->latency, sim::SimTime::zero());
    EXPECT_EQ(path->hops, 0);
}

TEST(Topology, LookupsAndUniqueness) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1}, 8);
    EXPECT_EQ(topo.find_by_name("a"), a);
    EXPECT_EQ(topo.find_by_ip(Ipv4{10, 0, 0, 1}), a);
    EXPECT_FALSE(topo.find_by_name("zz"));
    EXPECT_EQ(topo.node(a).cpu_cores, 8u);
    EXPECT_THROW(topo.add_host("a", Ipv4{10, 0, 0, 9}), std::invalid_argument);
    EXPECT_THROW(topo.add_host("b", Ipv4{10, 0, 0, 1}), std::invalid_argument);
    EXPECT_THROW(topo.add_host("c", Ipv4{}), std::invalid_argument);
    EXPECT_THROW(topo.add_link(a, a, milliseconds(1), sim::gbit_per_sec(1)),
                 std::invalid_argument);
}

TEST(Topology, IpAliases) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    topo.add_ip_alias(a, Ipv4{203, 0, 113, 7});
    EXPECT_EQ(topo.find_by_ip(Ipv4{203, 0, 113, 7}), a);
    topo.add_ip_alias(a, Ipv4{203, 0, 113, 7}); // idempotent
    const auto b = topo.add_host("b", Ipv4{10, 0, 0, 2});
    EXPECT_THROW(topo.add_ip_alias(b, Ipv4{203, 0, 113, 7}), std::invalid_argument);
}

TEST(Topology, PathCacheInvalidatedByPostLookupMutation) {
    // Regression: the memoized path cache must not serve routes computed on
    // an older graph. Query first (filling the cache), then mutate.
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    const auto s1 = topo.add_switch("s1");
    const auto b = topo.add_host("b", Ipv4{10, 0, 0, 2});
    topo.add_link(a, s1, milliseconds(10), sim::gbit_per_sec(1));
    topo.add_link(s1, b, milliseconds(10), sim::gbit_per_sec(1));

    ASSERT_TRUE(topo.path(a, b));
    EXPECT_EQ(topo.latency(a, b), milliseconds(20)); // cache now holds 20 ms

    // A faster link added after the first lookup must win immediately.
    topo.add_link(a, b, milliseconds(3), sim::gbit_per_sec(10));
    EXPECT_EQ(topo.latency(a, b), milliseconds(3));
    EXPECT_EQ(topo.path(a, b)->hops, 1);

    // A node attached after a cached *negative* result must become reachable.
    const auto c = topo.add_host("c", Ipv4{10, 0, 0, 3});
    EXPECT_FALSE(topo.path(a, c)); // cached as disconnected
    topo.add_link(b, c, milliseconds(5), sim::gbit_per_sec(1));
    const auto path = topo.path(a, c);
    ASSERT_TRUE(path);
    EXPECT_EQ(path->latency, milliseconds(8));
}

TEST(Topology, PortBookkeeping) {
    Topology topo;
    const auto a = topo.add_host("a", Ipv4{10, 0, 0, 1});
    EXPECT_FALSE(topo.port_open(a, 80));
    topo.open_port(a, 80);
    EXPECT_TRUE(topo.port_open(a, 80));
    EXPECT_FALSE(topo.port_open(a, 80, Proto::kUdp));
    topo.close_port(a, 80);
    EXPECT_FALSE(topo.port_open(a, 80));
}

// --------------------------------------------------------------- SharedLink

TEST(SharedLink, SingleTransferMatchesAnalytic) {
    sim::Simulation simulation;
    SharedLink link(simulation, sim::mbit_per_sec(8)); // 1 MB/s
    sim::SimTime finished;
    link.start_transfer(1'000'000, [&] { finished = simulation.now(); });
    simulation.run();
    EXPECT_NEAR(finished.seconds(), 1.0, 1e-6);
    EXPECT_EQ(link.bytes_completed(), 1'000'000);
}

TEST(SharedLink, FairSharingSlowsConcurrentTransfers) {
    sim::Simulation simulation;
    SharedLink link(simulation, sim::mbit_per_sec(8));
    sim::SimTime t1;
    sim::SimTime t2;
    link.start_transfer(1'000'000, [&] { t1 = simulation.now(); });
    link.start_transfer(1'000'000, [&] { t2 = simulation.now(); });
    simulation.run();
    // Two equal flows sharing the pipe both finish at ~2 s.
    EXPECT_NEAR(t1.seconds(), 2.0, 1e-3);
    EXPECT_NEAR(t2.seconds(), 2.0, 1e-3);
}

TEST(SharedLink, LateArrivalSharesRemainingCapacity) {
    sim::Simulation simulation;
    SharedLink link(simulation, sim::mbit_per_sec(8)); // 1 MB/s
    sim::SimTime t1;
    sim::SimTime t2;
    link.start_transfer(1'000'000, [&] { t1 = simulation.now(); });
    simulation.schedule(sim::from_seconds(0.5), [&] {
        link.start_transfer(250'000, [&] { t2 = simulation.now(); });
    });
    simulation.run();
    // First flow: 0.5 s alone (500 KB done), then shares: remaining 500 KB at
    // 0.5 MB/s -> 1 s more... but the second flow (250 KB at 0.5 MB/s) ends
    // at t=1.0 s, after which the first finishes its last 250 KB alone.
    EXPECT_NEAR(t2.seconds(), 1.0, 1e-3);
    EXPECT_NEAR(t1.seconds(), 1.25, 1e-3);
}

TEST(SharedLink, ZeroSizeCompletesImmediately) {
    sim::Simulation simulation;
    SharedLink link(simulation, sim::mbit_per_sec(1));
    bool done = false;
    link.start_transfer(0, [&] { done = true; });
    simulation.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(simulation.now(), sim::SimTime::zero());
}

} // namespace
} // namespace tedge::net
