// Tests for the RNG suite, distributions, statistics collectors, and
// histograms -- including parameterized property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "simcore/histogram.hpp"
#include "simcore/random.hpp"
#include "simcore/stats.hpp"

namespace tedge::sim {
namespace {

TEST(Rng, DeterministicPerSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(7);
    Rng child = a.split();
    // The child must not replay the parent's sequence.
    Rng parent_copy(7);
    static_cast<void>(parent_copy.split());
    EXPECT_EQ(child(), [&] { Rng c(7); return c.split()(); }());
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == child()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(4);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniform_int(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo = saw_lo || v == 2;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
}

TEST(Rng, ExponentialMeanConverges) {
    Rng rng(5);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

class LognormalSweep : public ::testing::TestWithParam<double> {};

TEST_P(LognormalSweep, MedianMatchesTarget) {
    const double sigma = GetParam();
    Rng rng(11);
    SampleSet samples;
    for (int i = 0; i < 20000; ++i) {
        samples.add(rng.lognormal_median(3.0, sigma));
    }
    // Median of lognormal(median=m) is m, independent of sigma.
    EXPECT_NEAR(samples.median(), 3.0, 3.0 * 0.05);
    // All samples are positive.
    EXPECT_GT(samples.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LognormalSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8));

TEST(Rng, NormalMoments) {
    Rng rng(6);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
    Rng rng(8);
    std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 40000; ++i) {
        ++counts[rng.weighted_index(weights)];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
    EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
    EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, PmfSumsToOneAndIsMonotone) {
    const double s = GetParam();
    ZipfDistribution zipf(42, s);
    double sum = 0;
    for (std::size_t k = 0; k < 42; ++k) {
        sum += zipf.pmf(k);
        if (k > 0) {
            EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1) + 1e-12);
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(zipf.pmf(42), 0.0);
}

TEST_P(ZipfSweep, SamplesFollowPmf) {
    const double s = GetParam();
    ZipfDistribution zipf(10, s);
    Rng rng(9);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
    for (std::size_t k = 0; k < 10; ++k) {
        EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSweep, ::testing::Values(0.5, 0.9, 1.2, 2.0));

TEST(OnlineStats, MatchesExactComputation) {
    OnlineStats stats;
    const std::vector<double> values{1, 2, 3, 4, 100};
    for (const double v : values) stats.add(v);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.mean(), 22.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 100.0);
    // Sample variance of {1,2,3,4,100}.
    EXPECT_NEAR(stats.variance(), 1902.5, 1e-9);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
    OnlineStats a;
    OnlineStats b;
    OnlineStats whole;
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(0, 100);
        (i % 2 == 0 ? a : b).add(v);
        whole.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SampleSet, ExactQuantiles) {
    SampleSet set;
    for (const double v : {4.0, 1.0, 3.0, 2.0, 5.0}) set.add(v);
    EXPECT_DOUBLE_EQ(set.median(), 3.0);
    EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(set.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(set.p25(), 2.0);
    EXPECT_DOUBLE_EQ(set.p75(), 4.0);
    EXPECT_DOUBLE_EQ(set.mean(), 3.0);
}

TEST(SampleSet, InterpolatesBetweenOrderStatistics) {
    SampleSet set;
    set.add(0.0);
    set.add(10.0);
    EXPECT_DOUBLE_EQ(set.median(), 5.0);
    EXPECT_DOUBLE_EQ(set.quantile(0.25), 2.5);
}

TEST(SampleSet, ErrorsOnEmptyOrBadArgs) {
    SampleSet set;
    EXPECT_THROW(static_cast<void>(set.median()), std::logic_error);
    set.add(1.0);
    EXPECT_THROW(static_cast<void>(set.quantile(-0.1)), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(set.quantile(1.1)), std::invalid_argument);
}

TEST(SampleSet, MergeAndSummary) {
    SampleSet a;
    SampleSet b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.median(), 2.0);
    EXPECT_NE(a.summary().find("median"), std::string::npos);
    EXPECT_NE(a.summary().find("n=2"), std::string::npos);
}

TEST(Histogram, BinningAndOverflow) {
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(5), 1u);
    EXPECT_EQ(h.bin_count(9), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
    EXPECT_FALSE(h.ascii().empty());
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, ExactUpperBoundIsOverflowNotLastBin) {
    // Bins are half-open [lo, hi): a sample at exactly x == hi belongs to
    // the overflow counter, never to the last bin.
    Histogram h(0.0, 100.0, 4);
    h.add(100.0);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bin_count(3), 0u);
    EXPECT_EQ(h.total(), 1u);
    // Just inside the range still lands in the last bin.
    h.add(99.9999);
    EXPECT_EQ(h.bin_count(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    // Exactly on an interior boundary goes to the upper bin (75 opens bin 3).
    h.add(75.0);
    EXPECT_EQ(h.bin_count(3), 2u);
    EXPECT_EQ(h.bin_count(2), 0u);
}

TEST(TimeSeriesBins, NegativeTimeClampsToFirstBin) {
    // Events stamped before t=0 (e.g. a duration measured against a start
    // that was itself clamped) land in bin 0 and still count in total().
    TimeSeriesBins bins(seconds(10), seconds(1));
    bins.add(seconds(-5));
    bins.add(milliseconds(-1));
    EXPECT_EQ(bins.bin_count(0), 2u);
    EXPECT_EQ(bins.total(), 2u);
}

TEST(TimeSeriesBins, HorizonAndBeyondClampToLastBin) {
    TimeSeriesBins bins(seconds(10), seconds(1));
    bins.add(seconds(10));   // t == horizon: clamped, not dropped
    bins.add(seconds(10) + milliseconds(1));
    bins.add(seconds(1000));
    EXPECT_EQ(bins.bin_count(9), 3u);
    EXPECT_EQ(bins.total(), 3u);
    EXPECT_EQ(bins.max_bin(), 3u);
}

TEST(TimeSeriesBins, CountsAndClamping) {
    TimeSeriesBins bins(seconds(10), seconds(1));
    bins.add(milliseconds(500));
    bins.add(seconds(3));
    bins.add(seconds(99));  // clamped into the last bin
    EXPECT_EQ(bins.bins(), 10u);
    EXPECT_EQ(bins.bin_count(0), 1u);
    EXPECT_EQ(bins.bin_count(3), 1u);
    EXPECT_EQ(bins.bin_count(9), 1u);
    EXPECT_EQ(bins.total(), 3u);
    EXPECT_EQ(bins.max_bin(), 1u);
    EXPECT_EQ(bins.bin_start(3), seconds(3));
    EXPECT_FALSE(bins.ascii().empty());
}

} // namespace
} // namespace tedge::sim
