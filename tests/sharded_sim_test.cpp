// Determinism and correctness of the sharded conservative kernel:
// ShardedSimulation / Domain, the (timestamp, source, sequence) mailbox
// merge, per-domain RNG streams, TopologyPartition lookahead derivation,
// the per-shard workload pumps, and the buffered log sinks.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sdn/control_plane_shard.hpp"
#include "simcore/logging.hpp"
#include "simcore/random.hpp"
#include "simcore/sharded_simulation.hpp"
#include "simcore/simulation.hpp"
#include "workload/stream.hpp"

namespace tedge {
namespace {

using sim::DomainId;
using sim::ShardedSimulation;
using sim::SimTime;

ShardedSimulation::Options options_with(SimTime lookahead, std::size_t shards,
                                        std::size_t workers) {
    ShardedSimulation::Options options;
    options.lookahead = lookahead;
    options.shards = shards;
    options.workers = workers;
    return options;
}

// ---------------------------------------------------------------- mailboxes

// Messages posted during one window are delivered in (timestamp, source id,
// per-source sequence) order regardless of posting order -- the total order
// the determinism argument rests on.
TEST(ShardedMailboxTest, DeliveryOrderIsTimestampSourceSequence) {
    ShardedSimulation sharded(options_with(sim::milliseconds(10), 1, 1));
    auto& a = sharded.add_domain("a");
    auto& b = sharded.add_domain("b");
    auto& dst = sharded.add_domain("dst");

    std::vector<std::string> delivered;
    const SimTime at = sim::milliseconds(50);
    auto tag = [&](const std::string& name) {
        return [&delivered, name] { delivered.push_back(name); };
    };

    // Post in deliberately scrambled order; all but one share a timestamp.
    // Within domain `b`, seq follows post() call order.
    a.sim().schedule(SimTime::zero(), [&] {
        b.post(2, at, tag("b/0"));
        a.post(2, at + sim::milliseconds(1), tag("a-late"));
        b.post(2, at, tag("b/1"));
        a.post(2, at, tag("a/0"));
    });
    sharded.run();

    ASSERT_EQ(delivered.size(), 4u);
    // Same timestamp: source id 0 ("a") before source id 1 ("b"); within
    // "b", sequence order; the later timestamp last.
    EXPECT_EQ(delivered[0], "a/0");
    EXPECT_EQ(delivered[1], "b/0");
    EXPECT_EQ(delivered[2], "b/1");
    EXPECT_EQ(delivered[3], "a-late");
    EXPECT_EQ(sharded.messages_delivered(), 4u);
    EXPECT_EQ(dst.sim().events_executed(), 4u);
}

TEST(ShardedMailboxTest, LookaheadContractViolationsThrow) {
    ShardedSimulation sharded(options_with(sim::milliseconds(10), 1, 1));
    auto& a = sharded.add_domain("a");
    sharded.add_domain("b");

    // Too early: at < now + lookahead.
    EXPECT_THROW(a.post(1, sim::milliseconds(5), [] {}), std::logic_error);
    // Unknown destination.
    EXPECT_THROW(a.post(7, sim::milliseconds(50), [] {}), std::out_of_range);
    // No finite lookahead configured at all.
    ShardedSimulation unbounded;
    auto& u = unbounded.add_domain("u");
    unbounded.add_domain("v");
    EXPECT_THROW(u.post(1, sim::seconds(1), [] {}), std::logic_error);
}

TEST(ShardedSimulationTest, ZeroLookaheadRejected) {
    ShardedSimulation::Options options;
    options.lookahead = SimTime::zero();
    EXPECT_THROW(ShardedSimulation{options}, std::invalid_argument);
    ShardedSimulation ok;
    EXPECT_THROW(ok.set_lookahead(sim::nanoseconds(-1)), std::invalid_argument);
}

// ------------------------------------------------------------- RNG streams

// A domain's RNG stream depends only on (run seed, domain id): adding more
// domains, or running under a different shard count, never perturbs the
// draws an existing domain observes.
TEST(ShardedRngTest, PerDomainStreamsIndependentOfShardCount) {
    auto draws = [](std::size_t total_domains, std::size_t shards) {
        ShardedSimulation sharded(
            options_with(sim::milliseconds(1), shards, 1));
        std::vector<sim::Domain*> domains;
        for (std::size_t i = 0; i < total_domains; ++i) {
            domains.push_back(&sharded.add_domain("d" + std::to_string(i)));
        }
        std::vector<double> out;
        for (int round = 0; round < 4; ++round) {
            out.push_back(domains[1]->rng().uniform01());
        }
        return out;
    };

    const auto base = draws(2, 1);
    EXPECT_EQ(draws(2, 2), base);   // shard count: irrelevant
    EXPECT_EQ(draws(8, 8), base);   // sibling domains: irrelevant
    // And the stream really is the documented derivation.
    sim::Rng expected = sim::Rng::for_stream(42, 1);
    for (double d : base) EXPECT_DOUBLE_EQ(d, expected.uniform01());
    // Distinct domains get distinct streams.
    EXPECT_NE(sim::Rng::for_stream(42, 0).uniform01(),
              sim::Rng::for_stream(42, 1).uniform01());
}

// ------------------------------------------------- single-domain equivalence

// With one domain, run()/run_until() are the serial kernel: same event
// count, same order, same final clock as a standalone Simulation.
TEST(ShardedSimulationTest, SingleDomainMatchesSerialKernel) {
    auto scenario = [](sim::Simulation& sim, std::vector<int>& order) {
        sim.schedule(sim::milliseconds(5), [&] { order.push_back(2); });
        sim.schedule(sim::milliseconds(1), [&] {
            order.push_back(1);
            sim.schedule(sim::milliseconds(1), [&] { order.push_back(3); });
        });
        sim.schedule_at(sim::milliseconds(10), [&] { order.push_back(4); },
                        /*daemon=*/true);
    };

    sim::Simulation serial;
    std::vector<int> serial_order;
    scenario(serial, serial_order);
    const auto serial_count = serial.run();

    ShardedSimulation sharded;
    auto& domain = sharded.add_domain("only");
    std::vector<int> sharded_order;
    scenario(domain.sim(), sharded_order);
    const auto sharded_count = sharded.run();

    EXPECT_EQ(sharded_order, serial_order);
    EXPECT_EQ(sharded_count, serial_count);
    EXPECT_EQ(sharded.now(), serial.now());
    EXPECT_EQ(sharded.events_executed(), serial.events_executed());
}

TEST(ShardedSimulationTest, RunUntilAdvancesEveryClockToDeadline) {
    ShardedSimulation sharded(options_with(sim::milliseconds(10), 2, 1));
    auto& a = sharded.add_domain("a");
    auto& b = sharded.add_domain("b");
    int fired = 0;
    a.sim().schedule(sim::milliseconds(30), [&] { ++fired; });
    // `b` has nothing scheduled at all.
    const SimTime deadline = sim::milliseconds(100);
    sharded.run_until(deadline);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(a.sim().now(), deadline);
    EXPECT_EQ(b.sim().now(), deadline);

    // Events at exactly a later deadline still execute (half-open window).
    a.sim().schedule_at(sim::milliseconds(200), [&] { ++fired; });
    sharded.run_until(sim::milliseconds(200));
    EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulationTest, AddDomainDuringRunThrows) {
    ShardedSimulation sharded;
    auto& a = sharded.add_domain("a");
    a.sim().schedule(SimTime::zero(), [&] {
        EXPECT_THROW(sharded.add_domain("late"), std::logic_error);
    });
    sharded.run();
}

// --------------------------------------------------- differential scenario

/// Everything observable about one run, for byte-level comparison.
struct RunDigest {
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    std::int64_t now_ns = 0;
    std::string metrics;
    std::string trace;
    std::string logs;

    bool operator==(const RunDigest&) const = default;
};

/// A fig09/fig12-shaped multi-domain scenario: `kEdges` edge domains each
/// running a ControlPlaneShard over its own Poisson arrival stream, plus a
/// controller domain aggregating periodic digests across 25 ms cut links.
/// Each edge also draws from its domain RNG, logs, traces, and counts
/// metrics, so the digest covers every per-domain sink.
RunDigest run_scenario(std::size_t shards, std::size_t workers) {
    constexpr std::size_t kEdges = 4;
    constexpr std::uint32_t kServices = 6;

    ShardedSimulation sharded(
        options_with(sim::milliseconds(25), shards, workers));

    std::vector<sim::Domain*> edges;
    for (std::size_t e = 0; e < kEdges; ++e) {
        edges.push_back(&sharded.add_domain("edge" + std::to_string(e)));
    }
    sim::Domain& controller = sharded.add_domain("controller");
    sdn::ControlPlaneAggregator aggregator(controller);

    workload::PoissonStream::Options base_stream;
    base_stream.services = kServices;
    base_stream.clients = 64;
    base_stream.limit = 400;
    base_stream.total_rate_per_s = 40.0;
    base_stream.seed = 7;

    struct Edge {
        std::unique_ptr<sdn::ControlPlaneShard> plane;
        std::unique_ptr<workload::PoissonStream> stream;
        std::unique_ptr<workload::StreamPump> pump;
        std::optional<sim::Logger> log;
        std::size_t installed = 0;
    };
    std::vector<Edge> state(kEdges);
    for (std::size_t e = 0; e < kEdges; ++e) {
        auto& edge = state[e];
        auto& domain = *edges[e];
        domain.enable_metrics();
        domain.enable_tracing();
        domain.tracer().enable();
        edge.log.emplace(domain.make_logger("edge", sim::LogLevel::kInfo));

        sdn::ControlPlaneShard::Config config;
        config.flow_memory = {sim::seconds(30), sim::seconds(5)};
        config.digest_period = sim::seconds(2);
        edge.plane = std::make_unique<sdn::ControlPlaneShard>(
            domain, aggregator, config);
        edge.stream = std::make_unique<workload::PoissonStream>(
            workload::PoissonStream::shard_options(
                base_stream, static_cast<std::uint32_t>(e), kEdges));
        const std::uint32_t ip_base =
            0xc0000000u + static_cast<std::uint32_t>(e) * 0x01000000u;
        edge.pump = std::make_unique<workload::StreamPump>(
            domain.sim(), *edge.stream,
            [&edge, &domain, ip_base](const workload::TraceEvent& event,
                                      const std::optional<workload::TraceEvent>&) {
                const auto span = domain.tracer().begin("packet_in");
                const net::Ipv4 client{
                    ip_base + static_cast<std::uint32_t>(edge.installed)};
                const net::ServiceAddress address{
                    net::Ipv4{0x0a000000u + event.service}, 80, net::Proto::kTcp};
                const bool hit = edge.plane->packet_in(
                    client, address, "svc" + std::to_string(event.service),
                    net::NodeId{event.service}, 8000,
                    "edge" + std::to_string(event.client % 2));
                domain.metrics().counter(hit ? "scenario.hit" : "scenario.miss")
                    .inc();
                // Per-domain RNG participates in control flow, so a draw
                // perturbed by shard count would change every sink below.
                if (domain.rng().uniform01() < 0.25) {
                    edge.log->info("sampled arrival svc" +
                                   std::to_string(event.service));
                }
                domain.tracer().end(span);
                ++edge.installed;
            });
        edge.plane->start();
        edge.pump->start();
    }

    RunDigest digest;
    digest.events = sharded.run();
    // Let the idle scans drain the tables, still under the barrier protocol.
    sharded.run_until(sharded.now() + sim::seconds(40));
    digest.events = sharded.events_executed();
    digest.messages = sharded.messages_delivered();
    digest.now_ns = sharded.now().ns();
    digest.metrics = sharded.dump_metrics();
    {
        std::ostringstream os;
        sharded.write_chrome_trace(os);
        digest.trace = os.str();
    }
    {
        std::ostringstream os;
        sharded.flush_logs(os);
        digest.logs = os.str();
    }
    EXPECT_GT(aggregator.digests_received(), 0u);
    EXPECT_EQ(aggregator.shards_reporting(), kEdges);
    EXPECT_GT(digest.messages, 0u);
    return digest;
}

// The tentpole guarantee: the full observable state of a multi-domain run --
// event counts, clocks, metrics dump, trace export, log bytes -- is
// identical at every (shard, worker) combination.
TEST(ShardedDeterminismTest, IdenticalAcrossShardAndWorkerCounts) {
    const RunDigest base = run_scenario(1, 1);
    EXPECT_GT(base.events, 400u);
    EXPECT_FALSE(base.metrics.empty());
    EXPECT_FALSE(base.logs.empty());

    for (const auto& [shards, workers] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 1}, {2, 4}, {8, 1}, {8, 4}, {0, 2}}) {
        const RunDigest run = run_scenario(shards, workers);
        EXPECT_EQ(run.events, base.events) << shards << "x" << workers;
        EXPECT_EQ(run.messages, base.messages) << shards << "x" << workers;
        EXPECT_EQ(run.now_ns, base.now_ns) << shards << "x" << workers;
        EXPECT_EQ(run.metrics, base.metrics) << shards << "x" << workers;
        EXPECT_EQ(run.trace, base.trace) << shards << "x" << workers;
        EXPECT_EQ(run.logs, base.logs) << shards << "x" << workers;
    }
}

// Repeating the same configuration twice is also bit-stable (no hidden
// wall-clock or address-dependent state).
TEST(ShardedDeterminismTest, RepeatRunsAreBitStable) {
    EXPECT_EQ(run_scenario(2, 2), run_scenario(2, 2));
}

// ---------------------------------------------------------------- topology

TEST(TopologyPartitionTest, CutLinksAndLookahead) {
    net::Topology topo;
    const auto a = topo.add_switch("a");
    const auto b = topo.add_switch("b");
    const auto c = topo.add_switch("c");
    const auto d = topo.add_switch("d");
    topo.add_link(a, b, sim::microseconds(10), sim::mbit_per_sec(10'000));
    topo.add_link(b, c, sim::milliseconds(25), sim::mbit_per_sec(1'000));
    topo.add_link(c, d, sim::microseconds(10), sim::mbit_per_sec(10'000));
    topo.add_link(a, d, sim::milliseconds(40), sim::mbit_per_sec(1'000));

    // {a, b} | {c, d}: two cut links, lookahead = min(25ms, 40ms).
    net::TopologyPartition partition(topo, {0, 0, 1, 1});
    EXPECT_EQ(partition.domain_count(), 2u);
    EXPECT_EQ(partition.domain_of(a), 0u);
    EXPECT_EQ(partition.domain_of(c), 1u);
    EXPECT_EQ(partition.cut_links().size(), 2u);
    EXPECT_EQ(partition.lookahead(), sim::milliseconds(25));
    EXPECT_EQ(partition.nodes_in(0).size(), 2u);
    EXPECT_EQ(partition.nodes_in(1).size(), 2u);

    // Everything in one domain: no cuts, unbounded lookahead.
    const auto single = net::TopologyPartition::single_domain(topo);
    EXPECT_EQ(single.domain_count(), 1u);
    EXPECT_TRUE(single.cut_links().empty());
    EXPECT_EQ(single.lookahead(), SimTime::max());
}

TEST(TopologyPartitionTest, RejectsBadAssignments) {
    net::Topology topo;
    const auto a = topo.add_switch("a");
    const auto b = topo.add_switch("b");
    topo.add_link(a, b, SimTime::zero(), sim::mbit_per_sec(10'000));
    // Assignment size must match the node count.
    EXPECT_THROW(net::TopologyPartition(topo, {0}), std::invalid_argument);
    // A zero-latency cut link admits no conservative lookahead.
    EXPECT_THROW(net::TopologyPartition(topo, {0, 1}), std::invalid_argument);
    // Keeping the zero-latency link internal is fine.
    EXPECT_EQ(net::TopologyPartition(topo, {0, 0}).lookahead(), SimTime::max());
}

// ---------------------------------------------------------------- workload

TEST(StreamShardingTest, ShardOptionsSplitBudgetAndRate) {
    workload::PoissonStream::Options base;
    base.services = 4;
    base.limit = 10;
    base.total_rate_per_s = 30.0;
    base.seed = 99;

    std::size_t total = 0;
    for (std::uint32_t s = 0; s < 3; ++s) {
        const auto shard = workload::PoissonStream::shard_options(base, s, 3);
        EXPECT_DOUBLE_EQ(shard.total_rate_per_s, 10.0);
        EXPECT_EQ(shard.seed, sim::Rng::stream_seed(99, s));
        total += shard.limit;
    }
    EXPECT_EQ(total, base.limit);  // 10 = 4 + 3 + 3
    EXPECT_EQ(workload::PoissonStream::shard_options(base, 0, 3).limit, 4u);
    EXPECT_THROW(workload::PoissonStream::shard_options(base, 3, 3),
                 std::invalid_argument);
    EXPECT_THROW(workload::PoissonStream::shard_options(base, 0, 0),
                 std::invalid_argument);
}

TEST(StreamShardingTest, ShardStreamPrefixStableAsShardCountGrows) {
    // Shard `s` draws from stream_seed(seed, s) regardless of the total
    // shard count, so shard 1's arrival *pattern* is a function of its id
    // alone (rates differ, but the underlying draw sequence is the id's).
    workload::PoissonStream::Options base;
    base.services = 4;
    base.limit = 12;
    base.total_rate_per_s = 12.0;
    const auto of2 = workload::PoissonStream::shard_options(base, 1, 2);
    const auto of4 = workload::PoissonStream::shard_options(base, 1, 4);
    EXPECT_EQ(of2.seed, of4.seed);
}

TEST(StreamShardingTest, PumpDeliversWholeStreamInOrder) {
    workload::PoissonStream::Options options;
    options.services = 3;
    options.limit = 50;
    options.total_rate_per_s = 100.0;
    options.seed = 5;
    workload::PoissonStream stream(options);

    sim::Simulation sim;
    std::vector<sim::SimTime> arrivals;
    workload::StreamPump pump(
        sim, stream,
        [&](const workload::TraceEvent& event,
            const std::optional<workload::TraceEvent>& next) {
            EXPECT_EQ(sim.now(), event.at);
            if (next) EXPECT_GE(next->at, event.at);
            arrivals.push_back(event.at);
        });
    EXPECT_FALSE(pump.done());
    pump.start();
    sim.run();
    EXPECT_TRUE(pump.done());
    EXPECT_EQ(pump.delivered(), 50u);
    ASSERT_EQ(arrivals.size(), 50u);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

// ------------------------------------------------------------------- logs

TEST(LogBufferTest, FlushMatchesDefaultSinkFormat) {
    sim::Simulation sim;
    sim::LogBuffer buffer;
    sim::Logger logger(sim, "comp", sim::LogLevel::kInfo);
    logger.set_sink(buffer.sink());

    sim.schedule(sim::milliseconds(3), [&] { logger.info("hello"); });
    sim.schedule(sim::milliseconds(7), [&] { logger.warn("uh oh"); });
    sim.run();

    ASSERT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.entries()[0].seq, 0u);
    EXPECT_EQ(buffer.entries()[1].seq, 1u);
    std::ostringstream os;
    buffer.flush_to(os);
    // Byte-for-byte the default stderr sink's format.
    EXPECT_EQ(os.str(),
              "[3.000ms] INFO comp: hello\n"
              "[7.000ms] WARN comp: uh oh\n");
    EXPECT_TRUE(buffer.empty());  // flush drains
}

TEST(LogBufferTest, CoordinatorFlushesDomainsInIdOrder) {
    ShardedSimulation sharded(options_with(sim::milliseconds(1), 2, 1));
    auto& a = sharded.add_domain("a");
    auto& b = sharded.add_domain("b");
    auto log_a = a.make_logger("a", sim::LogLevel::kInfo);
    auto log_b = b.make_logger("b", sim::LogLevel::kInfo);
    // `b` logs earlier in virtual time, but flush order is domain id order
    // (deterministic), not timestamp order.
    a.sim().schedule(sim::milliseconds(9), [&] { log_a.info("from a"); });
    b.sim().schedule(sim::milliseconds(2), [&] { log_b.info("from b"); });
    sharded.run();

    std::ostringstream os;
    sharded.flush_logs(os);
    EXPECT_EQ(os.str(),
              "[9.000ms] INFO a: from a\n"
              "[2.000ms] INFO b: from b\n");
}

} // namespace
} // namespace tedge
