// Container substrate tests: image references/layers, the content-addressed
// store, registries, the pull engine, and the container runtime.
#include <gtest/gtest.h>

#include <numeric>

#include "container/image.hpp"
#include "container/image_store.hpp"
#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"

namespace tedge::container {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------------- image

struct RefCase {
    const char* text;
    const char* registry;
    const char* repository;
    const char* tag;
};

class ImageRefParse : public ::testing::TestWithParam<RefCase> {};

TEST_P(ImageRefParse, ParsesDockerStyleReferences) {
    const auto& c = GetParam();
    const auto ref = ImageRef::parse(c.text);
    ASSERT_TRUE(ref) << c.text;
    EXPECT_EQ(ref->registry, c.registry);
    EXPECT_EQ(ref->repository, c.repository);
    EXPECT_EQ(ref->tag, c.tag);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ImageRefParse,
    ::testing::Values(
        RefCase{"nginx", "docker.io", "library/nginx", "latest"},
        RefCase{"nginx:1.23.2", "docker.io", "library/nginx", "1.23.2"},
        RefCase{"josefhammer/web-asm:amd64", "docker.io", "josefhammer/web-asm",
                "amd64"},
        RefCase{"gcr.io/tensorflow-serving/resnet", "gcr.io",
                "tensorflow-serving/resnet", "latest"},
        RefCase{"localhost/foo:v1", "localhost", "foo", "v1"},
        RefCase{"registry.local:5000/team/app:2", "registry.local:5000", "team/app",
                "2"}));

TEST(ImageRef, RejectsMalformed) {
    EXPECT_FALSE(ImageRef::parse(""));
    EXPECT_FALSE(ImageRef::parse("nginx:"));
}

TEST(ImageRef, FullAndShortForms) {
    const auto ref = ImageRef::parse("nginx:1.23.2");
    EXPECT_EQ(ref->full(), "docker.io/library/nginx:1.23.2");
    EXPECT_EQ(ref->str(), "nginx:1.23.2");
    const auto gcr = ImageRef::parse("gcr.io/tensorflow-serving/resnet");
    EXPECT_EQ(gcr->str(), "gcr.io/tensorflow-serving/resnet:latest");
}

class MakeLayersSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::size_t>> {};

TEST_P(MakeLayersSweep, SizesSumExactlyAndAllPositive) {
    const auto [total, count] = GetParam();
    const auto layers = make_layers("img", total, count);
    ASSERT_EQ(layers.size(), count);
    sim::Bytes sum = 0;
    for (const auto& layer : layers) {
        EXPECT_GT(layer.size, 0);
        EXPECT_FALSE(layer.digest.empty());
        sum += layer.size;
    }
    EXPECT_EQ(sum, total);
    // Digests are unique within the image.
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (std::size_t j = i + 1; j < layers.size(); ++j) {
            EXPECT_NE(layers[i].digest, layers[j].digest);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MakeLayersSweep,
                         ::testing::Values(std::pair{sim::kib(6.18), 1ul},
                                           std::pair{sim::mib(135), 6ul},
                                           std::pair{sim::mib(308), 9ul},
                                           std::pair{sim::Bytes{10}, 10ul},
                                           std::pair{sim::gib(2), 3ul}));

TEST(MakeLayers, Errors) {
    EXPECT_THROW(make_layers("x", 100, 0), std::invalid_argument);
    EXPECT_THROW(make_layers("x", 0, 1), std::invalid_argument);
}

// ------------------------------------------------------------- image store

Image test_image(const std::string& name, sim::Bytes size, std::size_t layers) {
    Image image;
    image.ref = *ImageRef::parse(name);
    image.layers = make_layers(name, size, layers);
    return image;
}

TEST(ImageStore, LayerDedupAcrossImages) {
    ImageStore store;
    auto a = test_image("a:1", sim::mib(10), 2);
    auto b = test_image("b:1", sim::mib(5), 1);
    b.layers.push_back(a.layers[0]); // shared base layer

    for (const auto& layer : a.layers) store.add_layer(layer);
    store.tag_image(a);
    const auto missing = store.missing_layers(b);
    ASSERT_EQ(missing.size(), 1u); // only b's own layer
    EXPECT_EQ(missing[0].digest, b.layers[0].digest);

    store.add_layer(b.layers[0]);
    store.tag_image(b);
    EXPECT_TRUE(store.has_image(a.ref));
    EXPECT_TRUE(store.has_image(b.ref));
    // Shared layer stored once: usage = a + b_own.
    EXPECT_EQ(store.disk_usage(), a.total_size() + b.layers[0].size);
}

TEST(ImageStore, GcKeepsSharedLayers) {
    ImageStore store;
    auto a = test_image("a:1", sim::mib(10), 2);
    auto b = test_image("b:1", sim::mib(5), 1);
    b.layers.push_back(a.layers[0]);
    for (const auto& layer : a.layers) store.add_layer(layer);
    store.add_layer(b.layers[0]);
    store.tag_image(a);
    store.tag_image(b);

    // Remove a; its non-shared layer is freed, the shared one survives.
    EXPECT_TRUE(store.remove_image(a.ref));
    const auto freed = store.gc();
    EXPECT_EQ(freed, a.layers[1].size);
    EXPECT_FALSE(store.has_image(a.ref));
    EXPECT_TRUE(store.has_image(b.ref));
    EXPECT_TRUE(store.has_layer(a.layers[0].digest)); // shared survives
    EXPECT_FALSE(store.has_layer(a.layers[1].digest));
}

TEST(ImageStore, TagRequiresLayersPresent) {
    ImageStore store;
    const auto image = test_image("x:1", sim::mib(1), 1);
    EXPECT_THROW(store.tag_image(image), std::logic_error);
    EXPECT_FALSE(store.has_image(image.ref));
    EXPECT_EQ(store.find_image(image.ref), nullptr);
}

TEST(ImageStore, AddLayerIsIdempotent) {
    ImageStore store;
    const Layer layer{"sha256:abc", 100};
    store.add_layer(layer);
    store.add_layer(layer);
    EXPECT_EQ(store.disk_usage(), 100);
    EXPECT_EQ(store.layer_count(), 1u);
}

// ---------------------------------------------------------------- registry

TEST(Registry, ManifestFetchTakesRttPlusOverhead) {
    sim::Simulation simulation;
    RegistryProfile profile;
    profile.host = "docker.io";
    profile.rtt = milliseconds(30);
    profile.manifest_overhead = milliseconds(300);
    Registry registry(simulation, profile);
    registry.put(test_image("nginx:1", sim::mib(10), 2));

    const Image* manifest = nullptr;
    sim::SimTime at;
    registry.fetch_manifest(*ImageRef::parse("nginx:1"), [&](const Image* image) {
        manifest = image;
        at = simulation.now();
    });
    simulation.run();
    ASSERT_NE(manifest, nullptr);
    EXPECT_EQ(at, milliseconds(330));

    bool unknown_called = false;
    registry.fetch_manifest(*ImageRef::parse("nope:1"), [&](const Image* image) {
        EXPECT_EQ(image, nullptr);
        unknown_called = true;
    });
    simulation.run();
    EXPECT_TRUE(unknown_called);
}

// ------------------------------------------------------------------ puller

struct PullFixture : ::testing::Test {
    PullFixture() : registry(simulation, profile()), puller(simulation, store) {}

    static RegistryProfile profile() {
        RegistryProfile p;
        p.host = "docker.io";
        p.rtt = milliseconds(10);
        p.bandwidth = sim::mbit_per_sec(800);
        p.manifest_overhead = milliseconds(100);
        p.per_layer_overhead = milliseconds(50);
        return p;
    }

    PullTiming pull_now(const ImageRef& ref) {
        PullTiming timing;
        bool ok = false;
        puller.pull(ref, registry, [&](bool success, const PullTiming& t) {
            ok = success;
            timing = t;
        });
        simulation.run();
        EXPECT_TRUE(ok);
        return timing;
    }

    sim::Simulation simulation;
    ImageStore store;
    Registry registry;
    Puller puller;
};

TEST_F(PullFixture, PullDownloadsAllLayersAndTags) {
    const auto image = test_image("nginx:1", sim::mib(50), 4);
    registry.put(image);
    const auto timing = pull_now(image.ref);
    EXPECT_EQ(timing.layers_downloaded, 4u);
    EXPECT_EQ(timing.bytes_downloaded, image.total_size());
    EXPECT_TRUE(store.has_image(image.ref));
    EXPECT_GT(timing.duration(), milliseconds(100)); // at least the manifest
}

TEST_F(PullFixture, SecondPullIsLocalHit) {
    const auto image = test_image("nginx:1", sim::mib(50), 4);
    registry.put(image);
    pull_now(image.ref);
    const auto second = pull_now(image.ref);
    EXPECT_EQ(second.layers_downloaded, 0u);
    EXPECT_EQ(second.bytes_downloaded, 0);
    EXPECT_LE(second.duration(), milliseconds(10));
}

TEST_F(PullFixture, SharedLayersAreNotRedownloaded) {
    auto base = test_image("nginx:1", sim::mib(50), 4);
    auto derived = test_image("app:1", sim::mib(10), 1);
    derived.layers.insert(derived.layers.begin(), base.layers.begin(),
                          base.layers.end());
    registry.put(base);
    registry.put(derived);

    pull_now(base.ref);
    const auto timing = pull_now(derived.ref);
    EXPECT_EQ(timing.layers_downloaded, 1u);
    EXPECT_EQ(timing.layers_cached, 4u);
    EXPECT_EQ(timing.bytes_downloaded, sim::mib(10));
}

TEST_F(PullFixture, ConcurrentPullsOfSameImageCoalesce) {
    const auto image = test_image("nginx:1", sim::mib(50), 4);
    registry.put(image);
    int completions = 0;
    PullTiming t1, t2;
    puller.pull(image.ref, registry, [&](bool ok, const PullTiming& t) {
        EXPECT_TRUE(ok);
        t1 = t;
        ++completions;
    });
    puller.pull(image.ref, registry, [&](bool ok, const PullTiming& t) {
        EXPECT_TRUE(ok);
        t2 = t;
        ++completions;
    });
    simulation.run();
    EXPECT_EQ(completions, 2);
    // Both callbacks report the single underlying job.
    EXPECT_EQ(t1.bytes_downloaded, image.total_size());
    EXPECT_EQ(t2.bytes_downloaded, image.total_size());
}

TEST_F(PullFixture, ConcurrentPullsShareInFlightLayers) {
    auto base = test_image("nginx:1", sim::mib(50), 3);
    auto derived = test_image("app:1", sim::mib(10), 1);
    derived.layers.insert(derived.layers.begin(), base.layers.begin(),
                          base.layers.end());
    registry.put(base);
    registry.put(derived);

    PullTiming tb, td;
    puller.pull(base.ref, registry, [&](bool, const PullTiming& t) { tb = t; });
    puller.pull(derived.ref, registry, [&](bool, const PullTiming& t) { td = t; });
    simulation.run();
    // The derived pull must not download the base layers a second time.
    EXPECT_EQ(tb.layers_downloaded + td.layers_downloaded, 4u);
    EXPECT_EQ(td.layers_shared + td.layers_cached, 3u);
    EXPECT_TRUE(store.has_image(base.ref));
    EXPECT_TRUE(store.has_image(derived.ref));
}

TEST_F(PullFixture, UnknownImageFails) {
    bool called = false;
    puller.pull(*ImageRef::parse("ghost:9"), registry,
                [&](bool ok, const PullTiming&) {
                    EXPECT_FALSE(ok);
                    called = true;
                });
    simulation.run();
    EXPECT_TRUE(called);
    EXPECT_FALSE(store.has_image(*ImageRef::parse("ghost:9")));
}

TEST_F(PullFixture, MoreLayersTakeLongerAtEqualSize) {
    const auto few = test_image("few:1", sim::mib(60), 2);
    const auto many = test_image("many:1", sim::mib(60), 8);
    registry.put(few);
    registry.put(many);
    const auto t_few = pull_now(few.ref);
    const auto t_many = pull_now(many.ref);
    // Per-layer overheads make the 8-layer image slower (paper fig. 13:
    // "pull times depend on both the image's total size and its number of
    // layers").
    EXPECT_GT(t_many.duration(), t_few.duration());
}

// ----------------------------------------------------------------- runtime

struct RuntimeFixture : ::testing::Test {
    RuntimeFixture() {
        node = topo.add_host("host", net::Ipv4{10, 0, 0, 2}, 12);
        runtime = std::make_unique<ContainerRuntime>(simulation, topo, node,
                                                     endpoints, sim::Rng{1});
        app.name = "web";
        app.init_median = milliseconds(40);
        app.init_sigma = 0.1;
        app.service_median = milliseconds(1);
        app.response_size = 256;
        app.concurrency = 2;
        app.port = 80;
    }

    ContainerConfig config() {
        ContainerConfig c;
        c.name = "svc.web";
        c.image = *ImageRef::parse("web:1");
        c.app = &app;
        return c;
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    AppProfile app;
    std::unique_ptr<ContainerRuntime> runtime;
};

TEST_F(RuntimeFixture, LifecycleStatesAndPort) {
    ContainerId id = 0;
    runtime->create(config(), [&](ContainerId created) { id = created; });
    simulation.run();
    ASSERT_NE(id, 0u);
    EXPECT_EQ(runtime->info(id).state, ContainerState::kCreated);
    EXPECT_FALSE(topo.port_open(node, 8080));

    bool running = false;
    runtime->start(id, 8080, [&] { running = true; });
    simulation.run();
    EXPECT_TRUE(running);
    EXPECT_EQ(runtime->info(id).state, ContainerState::kRunning);
    EXPECT_TRUE(runtime->info(id).app_ready);
    EXPECT_TRUE(topo.port_open(node, 8080));
    EXPECT_NE(endpoints.find(node, 8080), nullptr);
    // Start cost: namespace setup dominates; app init afterwards.
    EXPECT_GT(runtime->info(id).ready_at, runtime->info(id).started_at);

    bool stopped = false;
    runtime->stop(id, [&] { stopped = true; });
    simulation.run();
    EXPECT_TRUE(stopped);
    EXPECT_EQ(runtime->info(id).state, ContainerState::kExited);
    EXPECT_FALSE(topo.port_open(node, 8080));
    EXPECT_EQ(endpoints.find(node, 8080), nullptr);

    bool removed = false;
    runtime->remove(id, [&] { removed = true; });
    simulation.run();
    EXPECT_TRUE(removed);
    EXPECT_FALSE(runtime->exists(id));
}

TEST_F(RuntimeFixture, RestartAfterStopWorks) {
    ContainerId id = 0;
    runtime->create(config(), [&](ContainerId created) { id = created; });
    simulation.run();
    runtime->start(id, 8080, [] {});
    simulation.run();
    runtime->stop(id, [] {});
    simulation.run();
    bool running = false;
    runtime->start(id, 8080, [&] { running = true; });
    simulation.run();
    EXPECT_TRUE(running);
    EXPECT_TRUE(topo.port_open(node, 8080));
}

TEST_F(RuntimeFixture, RemoveRunningContainerThrows) {
    ContainerId id = 0;
    runtime->create(config(), [&](ContainerId created) { id = created; });
    simulation.run();
    runtime->start(id, 8080, [] {});
    simulation.run();
    EXPECT_THROW(runtime->remove(id, [] {}), std::logic_error);
}

TEST_F(RuntimeFixture, DoubleStartThrows) {
    ContainerId id = 0;
    runtime->create(config(), [&](ContainerId created) { id = created; });
    simulation.run();
    runtime->start(id, 8080, [] {});
    simulation.run();
    EXPECT_THROW(runtime->start(id, 8080, [] {}), std::logic_error);
}

TEST_F(RuntimeFixture, RequestsQueueBeyondConcurrencyLimit) {
    ContainerId id = 0;
    runtime->create(config(), [&](ContainerId created) { id = created; });
    simulation.run();
    runtime->start(id, 8080, [] {});
    simulation.run();

    const auto* handler = endpoints.find(node, 8080);
    ASSERT_NE(handler, nullptr);
    // Issue 4 requests at once against concurrency 2: completions come in
    // two waves of the ~1 ms service time.
    std::vector<sim::SimTime> completions;
    for (int i = 0; i < 4; ++i) {
        (*handler)(100, [&](sim::Bytes size) {
            EXPECT_EQ(size, 256);
            completions.push_back(simulation.now());
        });
    }
    simulation.run();
    ASSERT_EQ(completions.size(), 4u);
    // The queued pair must finish strictly after the first pair.
    EXPECT_GT(completions[2], completions[0]);
    EXPECT_GT(completions[3], completions[1]);
}

TEST_F(RuntimeFixture, LabelSelectorList) {
    ContainerConfig c1 = config();
    c1.labels = {{"edge.service", "a"}, {"tier", "web"}};
    ContainerConfig c2 = config();
    c2.labels = {{"edge.service", "b"}};
    runtime->create(c1, [](ContainerId) {});
    runtime->create(c2, [](ContainerId) {});
    simulation.run();
    EXPECT_EQ(runtime->list().size(), 2u);
    EXPECT_EQ(runtime->list({{"edge.service", "a"}}).size(), 1u);
    EXPECT_EQ(runtime->list({{"edge.service", "a"}, {"tier", "web"}}).size(), 1u);
    EXPECT_EQ(runtime->list({{"edge.service", "zzz"}}).size(), 0u);
}

TEST_F(RuntimeFixture, ConcurrentStartsContendForCpu) {
    // Start many containers simultaneously on a small node: the later ones
    // must take longer than an isolated start.
    net::Topology small_topo;
    const auto small_node = small_topo.add_host("small", net::Ipv4{10, 9, 0, 1}, 2);
    ContainerRuntime small_runtime(simulation, small_topo, small_node, endpoints,
                                   sim::Rng{2});
    std::vector<ContainerId> ids;
    for (int i = 0; i < 8; ++i) {
        ContainerConfig c = config();
        c.name = "svc" + std::to_string(i);
        small_runtime.create(c, [&](ContainerId id) { ids.push_back(id); });
    }
    simulation.run();
    std::vector<sim::SimTime> started;
    const sim::SimTime t0 = simulation.now();
    for (const auto id : ids) {
        small_runtime.start(id, 0, [&, t0] { started.push_back(simulation.now() - t0); });
    }
    simulation.run();
    ASSERT_EQ(started.size(), 8u);
    const auto slowest = *std::max_element(started.begin(), started.end());
    // An isolated start is ~340 ms; with 8 concurrent starts on 2 cores the
    // slowest should be visibly inflated.
    EXPECT_GT(slowest, milliseconds(500));
}

} // namespace
} // namespace tedge::container
