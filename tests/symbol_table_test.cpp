// SymbolTable tests: intern idempotence, O(1) round trip, id stability and
// determinism across large insert volumes (the control plane leans on dense,
// stable ids for its per-flow indexed state).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simcore/symbol_table.hpp"

namespace tedge::sim {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
    SymbolTable table;
    const SymbolId a = table.intern("nginx");
    const SymbolId b = table.intern("nginx");
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, RoundTripReturnsOriginalSpelling) {
    SymbolTable table;
    const SymbolId id = table.intern("edge-cluster-7");
    EXPECT_EQ(table.name(id), "edge-cluster-7");
}

TEST(SymbolTableTest, IdsAreDenseAndInsertionOrdered) {
    SymbolTable table;
    EXPECT_EQ(table.intern("a"), 0u);
    EXPECT_EQ(table.intern("b"), 1u);
    EXPECT_EQ(table.intern("a"), 0u); // re-intern does not advance
    EXPECT_EQ(table.intern("c"), 2u);
}

TEST(SymbolTableTest, FindDoesNotIntern) {
    SymbolTable table;
    EXPECT_FALSE(table.find("ghost").has_value());
    EXPECT_EQ(table.size(), 0u);
    table.intern("ghost");
    ASSERT_TRUE(table.find("ghost").has_value());
    EXPECT_EQ(*table.find("ghost"), 0u);
}

TEST(SymbolTableTest, NameThrowsOnForeignId) {
    SymbolTable table;
    table.intern("only");
    EXPECT_THROW(static_cast<void>(table.name(5)), std::out_of_range);
    EXPECT_THROW(static_cast<void>(table.name(kInvalidSymbol)), std::out_of_range);
}

TEST(SymbolTableTest, InternedNameKeepsRealSpelling) {
    SymbolTable table;
    const InternedName name = table.interned("resnet");
    EXPECT_TRUE(name.valid());
    EXPECT_EQ(name.str(), "resnet");
    EXPECT_EQ(name, table.interned("resnet"));
    EXPECT_FALSE(InternedName{}.valid());
}

TEST(SymbolTableTest, IdStabilityAcross100kInserts) {
    // Early ids (and the addresses behind the spellings) must survive 100k
    // further inserts: per-flow state holds SymbolIds for the run's lifetime.
    SymbolTable table;
    const SymbolId first = table.intern("svc-0");
    const std::string* first_addr = &table.name(first);
    std::vector<SymbolId> ids;
    ids.reserve(100'000);
    for (int i = 0; i < 100'000; ++i) {
        ids.push_back(table.intern("svc-" + std::to_string(i)));
    }
    EXPECT_EQ(table.size(), 100'000u);
    EXPECT_EQ(ids[0], first);
    EXPECT_EQ(&table.name(first), first_addr); // spellings never move
    for (int i = 0; i < 100'000; i += 997) {
        EXPECT_EQ(ids[static_cast<std::size_t>(i)], static_cast<SymbolId>(i));
        EXPECT_EQ(table.name(static_cast<SymbolId>(i)), "svc-" + std::to_string(i));
    }
}

TEST(SymbolTableTest, SingleThreadDeterminism) {
    // Two tables fed the same spellings in the same order assign identical
    // ids -- the property that keeps fixed-seed experiments reproducible.
    SymbolTable a;
    SymbolTable b;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 1000; ++i) {
            const std::string name = "name-" + std::to_string(i * 7 % 411);
            EXPECT_EQ(a.intern(name), b.intern(name));
        }
    }
    EXPECT_EQ(a.size(), b.size());
}

} // namespace
} // namespace tedge::sim
