// Session-plane tests (DESIGN §11): first-class UE sessions, continuity
// policies, client-scoped FlowMemory state, strict/fallback ingress
// resolution, mid-request handovers (deterministic across event-queue
// backends), and the cross-shard FlowMemory handoff -- byte-identical at
// every shard/worker count under all three coordinator sync modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/edge_platform.hpp"
#include "sdn/continuity.hpp"
#include "sdn/control_plane_shard.hpp"
#include "sdn/session_plane.hpp"
#include "simcore/sharded_simulation.hpp"
#include "workload/mobility.hpp"

namespace tedge::sdn {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---------------------------------------------------- continuity policies

ContinuityContext context_with(sim::SimTime resteer, sim::SimTime migrate,
                               bool warm, sim::SimTime deploy_cost) {
    ContinuityContext ctx;
    ctx.resteer_latency = resteer;
    ctx.migrate_latency = migrate;
    ctx.target_warm = warm;
    ctx.deployment_cost = deploy_cost;
    return ctx;
}

TEST(ContinuityPolicyTest, ResteerPolicyAlwaysResteers) {
    ResteerPolicy policy;
    EXPECT_EQ(policy.decide(context_with(seconds(1), sim::SimTime::zero(), true,
                                         sim::SimTime::zero())),
              ContinuityAction::kResteer);
}

TEST(ContinuityPolicyTest, LatencyDeltaMigratesOnlyAboveThreshold) {
    ContinuityConfig config;
    config.min_latency_gain = milliseconds(1);
    LatencyDeltaPolicy policy(config);
    // Saves 4 ms per trip to a warm target: migrate.
    EXPECT_EQ(policy.decide(context_with(milliseconds(5), milliseconds(1), true,
                                         sim::SimTime::zero())),
              ContinuityAction::kMigrate);
    // Saves only 0.5 ms: not worth a cut-over.
    EXPECT_EQ(policy.decide(context_with(milliseconds(1) + sim::microseconds(500),
                                         milliseconds(1), true,
                                         sim::SimTime::zero())),
              ContinuityAction::kResteer);
}

TEST(ContinuityPolicyTest, LatencyDeltaRespectsDeployCostCap) {
    ContinuityConfig config;
    config.min_latency_gain = milliseconds(1);
    config.max_deploy_cost = seconds(5);
    LatencyDeltaPolicy policy(config);
    // Huge gain, but a cold target above the cap: re-steer.
    EXPECT_EQ(policy.decide(context_with(milliseconds(50), milliseconds(1),
                                         false, seconds(10))),
              ContinuityAction::kResteer);
    // Same gain, warm-up within budget: migrate.
    EXPECT_EQ(policy.decide(context_with(milliseconds(50), milliseconds(1),
                                         false, milliseconds(200))),
              ContinuityAction::kMigrate);
}

TEST(ContinuityPolicyTest, FactoryResolvesNamesAndRejectsUnknown) {
    EXPECT_STREQ(make_continuity_policy({.policy = kResteerPolicy})->name(),
                 kResteerPolicy);
    EXPECT_STREQ(make_continuity_policy({.policy = kLatencyDeltaPolicy})->name(),
                 kLatencyDeltaPolicy);
    ContinuityConfig bad;
    bad.policy = "teleport";
    EXPECT_THROW(make_continuity_policy(bad), std::invalid_argument);
}

// ------------------------------------------------------------ session plane

struct SessionPlaneFixture : ::testing::Test {
    SessionPlaneFixture() {
        gnb2 = &platform.add_ingress("gnb2", milliseconds(2));
        client = platform.add_client("ue", ip);
        platform.topology().add_link(client, gnb2->node(), sim::microseconds(300),
                                     sim::gbit_per_sec(1));
    }

    core::EdgePlatform platform;
    net::Ipv4 ip{10, 0, 1, 1};
    net::NodeId client;
    net::OvsSwitch* gnb2 = nullptr;
};

TEST_F(SessionPlaneFixture, AddClientCreatesExplicitSession) {
    auto& sessions = platform.sessions();
    const UeSession* s = sessions.by_ip(ip);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->explicit_attachment);
    EXPECT_EQ(s->epoch, 1u);
    EXPECT_EQ(s->ingress, platform.ingress().node());
    EXPECT_EQ(sessions.by_node(client), s);
    EXPECT_EQ(sessions.stats().attaches, 1u);
    EXPECT_EQ(sessions.current_ingress(client), &platform.ingress());
}

TEST_F(SessionPlaneFixture, SameCellReattachIsNotAHandover) {
    bool fired = false;
    platform.sessions().on_handover(
        [&](const UeSession&, net::NodeId) { fired = true; });
    platform.handover_client(client, platform.ingress());
    const UeSession* s = platform.sessions().by_ip(ip);
    EXPECT_EQ(s->epoch, 1u);
    EXPECT_EQ(s->handovers, 0u);
    EXPECT_FALSE(fired);
    EXPECT_EQ(platform.sessions().stats().handovers, 0u);
}

TEST_F(SessionPlaneFixture, HandoverBumpsEpochAndFiresCallback) {
    std::optional<net::NodeId> seen_old;
    std::uint64_t seen_epoch = 0;
    platform.sessions().on_handover([&](const UeSession& s, net::NodeId old) {
        seen_old = old;
        seen_epoch = s.epoch;
        EXPECT_EQ(s.ingress, gnb2->node()); // already re-homed when fired
    });
    platform.handover_client(client, *gnb2);
    ASSERT_TRUE(seen_old);
    EXPECT_EQ(*seen_old, platform.ingress().node());
    EXPECT_EQ(seen_epoch, 2u);
    EXPECT_EQ(platform.sessions().stats().handovers, 1u);
    EXPECT_EQ(platform.sessions().current_ingress(client), gnb2);
    EXPECT_EQ(*platform.sessions().location(ip), gnb2->node());
}

TEST_F(SessionPlaneFixture, ImplicitSessionsFollowPackets) {
    auto& sessions = platform.sessions();
    const net::Ipv4 stranger{10, 0, 9, 9};
    sessions.observe_packet(stranger, platform.ingress().node());
    const UeSession* s = sessions.by_ip(stranger);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(s->explicit_attachment);
    EXPECT_EQ(sessions.stats().implicit_sessions, 1u);
    // Last packet wins for implicit sessions (the legacy behaviour).
    sessions.observe_packet(stranger, gnb2->node());
    EXPECT_EQ(*sessions.location(stranger), gnb2->node());
    EXPECT_EQ(sessions.by_ip(stranger)->epoch, 2u);
}

TEST_F(SessionPlaneFixture, ExplicitAttachmentOutweighsStragglerPackets) {
    platform.handover_client(client, *gnb2);
    // An in-flight packet drains out of the old cell: counted, not believed.
    platform.sessions().observe_packet(ip, platform.ingress().node());
    EXPECT_EQ(*platform.sessions().location(ip), gnb2->node());
    EXPECT_EQ(platform.sessions().stats().out_of_cell_packets, 1u);
}

TEST_F(SessionPlaneFixture, DetachRemovesSession) {
    auto& sessions = platform.sessions();
    EXPECT_TRUE(sessions.detach(ip));
    EXPECT_EQ(sessions.by_ip(ip), nullptr);
    EXPECT_EQ(sessions.by_node(client), nullptr);
    EXPECT_EQ(sessions.current_ingress(client), nullptr);
    EXPECT_FALSE(sessions.detach(ip));
    EXPECT_EQ(sessions.stats().detaches, 1u);
}

// -------------------------------------------- client-scoped flow memory

MemorizedFlow client_flow(std::uint32_t client_octet, std::uint8_t service_octet,
                          const std::string& cluster = "edge") {
    MemorizedFlow flow;
    flow.client_ip = net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(client_octet)};
    flow.service_address = {net::Ipv4{203, 0, 113, service_octet}, 80};
    flow.service_name = "svc" + std::to_string(service_octet);
    flow.instance_node = net::NodeId{1};
    flow.instance_port = 8080;
    flow.cluster = cluster;
    return flow;
}

struct ClientMemoryFixture : ::testing::Test {
    ClientMemoryFixture()
        : memory(simulation, {.idle_timeout = seconds(60),
                              .scan_period = seconds(5),
                              .track_clients = true}) {}

    sim::Simulation simulation;
    FlowMemory memory;
};

TEST_F(ClientMemoryFixture, ExtractClientRemovesAllFlowsWithoutIdleNoise) {
    std::size_t idle_calls = 0;
    memory.set_idle_service_callback(
        [&](const std::string&, const std::string&) { ++idle_calls; });
    memory.memorize(client_flow(1, 1));
    memory.memorize(client_flow(1, 2));
    memory.memorize(client_flow(2, 1));

    const auto moved = memory.extract_client(net::Ipv4{10, 0, 1, 1});
    EXPECT_EQ(moved.size(), 2u);
    EXPECT_EQ(memory.size(), 1u);
    EXPECT_TRUE(memory.flows_of_client(net::Ipv4{10, 0, 1, 1}).empty());
    // The flows moved, they did not go idle: no scale-down signals.
    EXPECT_EQ(idle_calls, 0u);
    // The untouched client keeps its flow.
    EXPECT_EQ(memory.flows_of_client(net::Ipv4{10, 0, 1, 2}).size(), 1u);
}

TEST_F(ClientMemoryFixture, AdoptionPreservesCreatedAndRestartsIdleClock) {
    simulation.run_until(seconds(1));
    memory.memorize(client_flow(1, 1));
    simulation.run_until(seconds(10));
    auto moved = memory.extract_client(net::Ipv4{10, 0, 1, 1});
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0].created, seconds(1));

    simulation.run_until(seconds(20));
    memory.memorize(moved[0]); // the adopting shard re-memorizes
    const auto* adopted =
        memory.peek(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80});
    ASSERT_NE(adopted, nullptr);
    EXPECT_EQ(adopted->created, seconds(1));    // age survives the move
    EXPECT_EQ(adopted->last_used, seconds(20)); // idle clock restarts
}

TEST_F(ClientMemoryFixture, ExtractedFlowsLeaveNoStaleExpiry) {
    std::size_t idle_calls = 0;
    memory.set_idle_service_callback(
        [&](const std::string&, const std::string&) { ++idle_calls; });
    memory.memorize(client_flow(1, 1));
    simulation.run_until(seconds(5));
    (void)memory.extract_client(net::Ipv4{10, 0, 1, 1});
    // The filed expiry bucket fires long after the flow left: nothing to
    // expire, nothing to notify.
    simulation.run_until(seconds(180));
    EXPECT_EQ(memory.size(), 0u);
    EXPECT_EQ(idle_calls, 0u);
}

TEST_F(ClientMemoryFixture, ForgetFlowNotifiesOnlyWhenPairGoesIdle) {
    std::vector<std::pair<std::string, std::string>> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string& cluster) {
            idle.emplace_back(service, cluster);
        });
    memory.memorize(client_flow(1, 1));
    memory.memorize(client_flow(2, 1));

    EXPECT_TRUE(memory.forget_flow(net::Ipv4{10, 0, 1, 1},
                                   {net::Ipv4{203, 0, 113, 1}, 80},
                                   /*notify_if_idle=*/true));
    EXPECT_TRUE(idle.empty()); // client 2 still holds the pair live
    EXPECT_TRUE(memory.forget_flow(net::Ipv4{10, 0, 1, 2},
                                   {net::Ipv4{203, 0, 113, 1}, 80},
                                   /*notify_if_idle=*/true));
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0], (std::pair<std::string, std::string>{"svc1", "edge"}));
    EXPECT_FALSE(memory.forget_flow(net::Ipv4{10, 0, 1, 9},
                                    {net::Ipv4{203, 0, 113, 1}, 80}, true));
}

TEST(ClientMemoryParityTest, FlowsOfClientMatchesWithAndWithoutIndex) {
    sim::Simulation sim_a, sim_b;
    FlowMemory indexed(sim_a, {.idle_timeout = seconds(60),
                               .scan_period = seconds(5),
                               .track_clients = true});
    FlowMemory scanning(sim_b, {.idle_timeout = seconds(60),
                                .scan_period = seconds(5),
                                .track_clients = false});
    for (auto* m : {&indexed, &scanning}) {
        m->memorize(client_flow(1, 1));
        m->memorize(client_flow(1, 2));
        m->memorize(client_flow(1, 3));
        m->memorize(client_flow(2, 1));
        m->forget_flow(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 2}, 80},
                       false);
    }
    auto names = [](const FlowMemory& m) {
        std::vector<std::string> out;
        for (const auto& f : m.flows_of_client(net::Ipv4{10, 0, 1, 1})) {
            out.push_back(f.service_name);
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(names(indexed), names(scanning));
    EXPECT_EQ(names(indexed), (std::vector<std::string>{"svc1", "svc3"}));
}

// ------------------------------------------- platform mobility scenarios

/// A two-cell platform with one on-demand service; parametrized over the
/// controller config and (for backend differentials) a caller-owned kernel.
struct TwoCellPlatform {
    explicit TwoCellPlatform(sdn::ControllerConfig config = {},
                             sim::Simulation* host = nullptr,
                             sim::SimTime backbone = sim::microseconds(200),
                             sim::SimTime radio_link = sim::microseconds(300),
                             bool defer_controller = false,
                             bool link_second_cell = true)
        : platform(host != nullptr
                       ? std::make_unique<core::EdgePlatform>(*host)
                       : std::make_unique<core::EdgePlatform>()) {
        auto& p = *platform;
        client = p.add_client("ue", client_ip, radio_link);
        edge = p.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        p.add_cloud();
        gnb2 = &p.add_ingress("gnb2", backbone);
        // Overlapping coverage: pre-wire the second radio leg so handovers
        // can be scheduled without touching the topology. Cells that only
        // come into range later (the migration scenarios) skip this and use
        // connect_client_to_ingress at handover time instead.
        if (link_second_cell) {
            p.topology().add_link(client, gnb2->node(), radio_link,
                                  sim::gbit_per_sec(1));
        }

        auto& hub = p.add_registry({.host = "docker.io"});
        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(8), 2);
        hub.put(image);

        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(15);
        app.service_median = sim::microseconds(150);
        app.port = 80;
        p.add_app_profile("web:1", app);

        p.add_docker_cluster("edge", edge);
        address = {net::Ipv4{203, 0, 113, 90}, 80};
        p.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
        config.scale_down_idle = false;
        config.flow_memory.idle_timeout = seconds(300);
        controller_config = std::move(config);
        // The controller snapshots the cluster list: fixtures adding more
        // clusters defer the start until they are all in place.
        if (!defer_controller) start_controller();
    }

    void start_controller() {
        platform->start_controller(edge, controller_config);
    }

    net::HttpResult request_and_wait(net::NodeId from) {
        net::HttpResult result;
        bool done = false;
        platform->http_request(from, address, 100,
                               [&](const net::HttpResult& r) {
                                   result = r;
                                   done = true;
                               });
        while (!done) {
            platform->simulation().run_until(platform->simulation().now() +
                                             seconds(1));
        }
        return result;
    }
    net::HttpResult request_and_wait() { return request_and_wait(client); }

    std::unique_ptr<core::EdgePlatform> platform;
    sdn::ControllerConfig controller_config;
    net::Ipv4 client_ip{10, 0, 1, 1};
    net::NodeId client, edge;
    net::OvsSwitch* gnb2 = nullptr;
    net::ServiceAddress address;
};

// The satellite-2 regression: before the session plane, the dispatcher's
// location table was packet-driven and went stale between the radio
// handover and the client's next packet. Now the handover event itself is
// the source of truth -- no packet needed.
TEST(SessionPlaneScenarioTest, LocationIsFreshBeforeAnyPostHandoverPacket) {
    TwoCellPlatform t;
    const auto first = t.request_and_wait();
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_EQ(*t.platform->controller().dispatcher().client_location(t.client_ip),
              t.platform->ingress().node());

    t.platform->handover_client(t.client, *t.gnb2);
    // No packet has flowed since the handover; the location must already
    // point at the new cell.
    EXPECT_EQ(*t.platform->controller().dispatcher().client_location(t.client_ip),
              t.gnb2->node());
    EXPECT_EQ(t.platform->controller().dispatcher().stats().handovers, 1u);
}

// Satellite 1: unattached requesters fall back to the primary ingress and
// the fallback is counted; attached clients never touch the counter.
TEST(SessionPlaneScenarioTest, UnattachedFallbackIsCounted) {
    TwoCellPlatform t;
    const auto attached = t.request_and_wait();
    ASSERT_TRUE(attached.ok) << attached.error;
    EXPECT_EQ(t.platform->network().unattached_fallbacks(), 0u);

    // The edge host never attached anywhere: counted fallback, request ok.
    const auto stray = t.request_and_wait(t.edge);
    EXPECT_TRUE(stray.ok) << stray.error;
    EXPECT_EQ(t.platform->network().unattached_fallbacks(), 1u);
}

TEST(SessionPlaneScenarioTest, StrictAttachmentRejectsUnattachedClients) {
    sim::Simulation sim;
    core::EdgePlatformConfig config;
    config.tcp.strict_attachment = true;
    core::EdgePlatform platform(sim, config);
    core::EdgePlatform* p = &platform;
    const auto client = p->add_client("ue", net::Ipv4{10, 0, 1, 1});
    const auto edge = p->add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
    p->add_cloud();
    p->add_docker_cluster("edge", edge);
    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 90}, 80};
    p->register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
    p->start_controller(edge);

    net::HttpResult result;
    bool done = false;
    p->http_request(edge, address, 100, [&](const net::HttpResult& r) {
        result = r;
        done = true;
    });
    sim.run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("strict"), std::string::npos) << result.error;
    EXPECT_EQ(p->network().requests_failed(), 1u);
    EXPECT_EQ(p->network().unattached_fallbacks(), 0u);
    // Attached clients are unaffected by strict mode.
    EXPECT_EQ(p->sessions().current_ingress(client), &p->ingress());
}

// ---------------------------------------------- mid-request handovers

struct MidRequestOutcome {
    bool first_ok = false;
    bool second_ok = false;
    bool third_ok = false;
    std::uint64_t handovers = 0;
    std::uint64_t memory_hits = 0;
    std::size_t deployments = 0;
    std::int64_t finished_ns = 0;

    bool operator==(const MidRequestOutcome&) const = default;
};

/// Request 1 deploys on demand; the client re-homes to gNB2 at t=5 ms --
/// squarely inside the with-waiting deployment. Request 2 then enters at
/// gNB2 and re-homes *back* mid-exchange (between its SYN and the
/// response). Request 3 enters at the primary again.
MidRequestOutcome run_mid_request_scenario(sim::QueueBackend backend) {
    sim::Simulation sim(backend);
    TwoCellPlatform t({}, &sim);
    MidRequestOutcome out;

    t.platform->schedule_handover(t.client, *t.gnb2, milliseconds(5));
    out.first_ok = t.request_and_wait().ok;
    sim.run_until(sim.now() + seconds(1));

    t.platform->schedule_handover(t.client, t.platform->ingress(),
                                  sim.now() + sim::microseconds(300));
    out.second_ok = t.request_and_wait().ok;
    sim.run_until(sim.now() + seconds(1));

    out.third_ok = t.request_and_wait().ok;
    const auto& stats = t.platform->controller().dispatcher().stats();
    out.handovers = stats.handovers;
    out.memory_hits = stats.memory_hits;
    out.deployments = t.platform->deployment_engine().records().size();
    out.finished_ns = sim.now().ns();
    return out;
}

TEST(MidRequestHandoverTest, RequestsSurviveReHomesAtEveryPhase) {
    const auto out = run_mid_request_scenario(sim::QueueBackend::kHeap);
    EXPECT_TRUE(out.first_ok);
    EXPECT_TRUE(out.second_ok);
    EXPECT_TRUE(out.third_ok);
    EXPECT_EQ(out.handovers, 2u);
    // One on-demand deployment serves all three requests across both cells.
    EXPECT_EQ(out.deployments, 1u);
}

TEST(MidRequestHandoverTest, IdenticalAcrossQueueBackends) {
    EXPECT_EQ(run_mid_request_scenario(sim::QueueBackend::kHeap),
              run_mid_request_scenario(sim::QueueBackend::kWheel));
}

// --------------------------------------------------- migrate-and-warm

/// Two clusters, one per cell, 4 ms of backbone between the cells: under
/// the latency_delta policy a handover to gNB2 warms the near cluster and
/// cuts over; under resteer the old instance keeps serving.
struct MigrationPlatform : TwoCellPlatform {
    static sdn::ControllerConfig migration_config() {
        sdn::ControllerConfig config;
        config.dispatcher.continuity.policy = kLatencyDeltaPolicy;
        // Cold warm-ups are acceptable in this scenario.
        config.dispatcher.continuity.max_deploy_cost = seconds(60);
        return config;
    }

    // 4 ms of backbone between the cells, 5 ms radio links: neither the
    // client node nor the edge hosts can short-cut the backhaul, so the
    // post-handover latency picture is genuinely asymmetric. gNB2 is out of
    // range until the UE actually moves -- connect_client_to_ingress wires
    // the radio leg at handover time.
    MigrationPlatform()
        : TwoCellPlatform(migration_config(), nullptr, milliseconds(4),
                          milliseconds(5), /*defer_controller=*/true,
                          /*link_second_cell=*/false) {
        // A second cluster right next to gNB2 (and as far from the primary
        // cell as the backbone), added before the controller snapshots the
        // cluster list.
        auto& p = *platform;
        edge2 = p.add_edge_host("edge2", net::Ipv4{10, 0, 0, 3}, 12,
                                milliseconds(4));
        p.topology().add_link(edge2, gnb2->node(), sim::microseconds(100),
                              sim::gbit_per_sec(10));
        p.add_docker_cluster("edge2", edge2);
        start_controller();
    }

    net::NodeId edge2;
};

TEST(MigrationTest, HandoverWarmsNearClusterAndCutsOver) {
    MigrationPlatform t;
    const auto first = t.request_and_wait();
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.server_node, t.edge); // deployed near the primary cell

    t.platform->connect_client_to_ingress(t.client, *t.gnb2, milliseconds(5));
    const auto& stats = t.platform->controller().dispatcher().stats();
    EXPECT_EQ(stats.migrations, 1u); // 4 ms of backbone clears the threshold
    EXPECT_EQ(stats.migrations_completed, 0u); // still warming

    // Let the warm-up finish and cut over, then request again from gNB2.
    t.platform->simulation().run_until(t.platform->simulation().now() +
                                       seconds(30));
    EXPECT_EQ(stats.migrations_completed, 1u);
    const auto after = t.request_and_wait();
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.server_node, t.edge2); // served by the warmed instance
}

TEST(MigrationTest, StaleMigrationIsDroppedAfterSecondReHome) {
    MigrationPlatform t;
    ASSERT_TRUE(t.request_and_wait().ok);

    t.platform->connect_client_to_ingress(t.client, *t.gnb2, milliseconds(5));
    // Bounce straight back while the edge2 instance is still warming: the
    // completion belongs to a dead epoch and must not cut anything over.
    t.platform->schedule_handover(t.client, t.platform->ingress(),
                                  t.platform->simulation().now() +
                                      milliseconds(1));
    t.platform->simulation().run_until(t.platform->simulation().now() +
                                       seconds(30));
    const auto& stats = t.platform->controller().dispatcher().stats();
    EXPECT_EQ(stats.migrations, 1u);
    EXPECT_EQ(stats.stale_migrations, 1u);
    EXPECT_EQ(stats.migrations_completed, 0u);
    // The flow still points at the original instance.
    const auto result = t.request_and_wait();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, t.edge);
}

// ------------------------------------------- cross-shard client handoff

/// Everything observable about one sharded mobility run.
struct HandoffDigest {
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    std::int64_t now_ns = 0;
    std::string state; ///< per-shard counters + aggregator totals

    bool operator==(const HandoffDigest&) const = default;
};

/// A commuter corridor over `kCells` edge sites (one sim::Domain each): every
/// UE's flow is installed at cell 0, then handed shard-to-shard along the
/// closed-form corridor crossings. Conservation (handed off == adopted, all
/// flows end at the last cell) and byte-identity across shard/worker counts
/// and sync modes are the assertions.
HandoffDigest run_handoff_scenario(std::size_t shards, std::size_t workers,
                                   sim::SyncMode sync) {
    constexpr std::uint32_t kCells = 4;
    constexpr std::uint32_t kUes = 8;

    sim::ShardedSimulation::Options options;
    options.lookahead = milliseconds(25);
    options.shards = shards;
    options.workers = workers;
    options.sync = sync;
    sim::ShardedSimulation sharded(options);

    std::vector<sim::Domain*> domains;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        domains.push_back(&sharded.add_domain("cell" + std::to_string(c)));
    }
    sim::Domain& controller = sharded.add_domain("controller");
    ControlPlaneAggregator aggregator(controller);

    std::vector<std::unique_ptr<ControlPlaneShard>> planes;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        ControlPlaneShard::Config config;
        config.flow_memory.idle_timeout = seconds(600);
        config.flow_memory.scan_period = seconds(5);
        config.flow_memory.track_clients = true;
        config.digest_period = seconds(10);
        planes.push_back(std::make_unique<ControlPlaneShard>(*domains[c],
                                                             aggregator, config));
        planes.back()->start();
    }

    workload::CorridorMobility::Options corridor_options;
    corridor_options.ues = kUes;
    corridor_options.cells = kCells;
    corridor_options.seed = 9;
    workload::CorridorMobility corridor(corridor_options);

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 5}, 80};
    for (std::uint32_t u = 0; u < kUes; ++u) {
        const net::Ipv4 ip{0x0a010000u + u};
        // Install the UE's flow at its home cell shortly after t=0.
        domains[0]->sim().schedule_at(
            milliseconds(static_cast<std::int64_t>(u) + 1),
            [&planes, ip, address] {
                planes[0]->packet_in(ip, address, "web", net::NodeId{100}, 8080,
                                     "cell0");
            });
        // Hand the client's slice along at each corridor crossing; the
        // closed form lets every shard know the instants without replaying
        // the merged trace.
        for (std::uint32_t k = 1; k < kCells; ++k) {
            domains[k - 1]->sim().schedule_at(
                corridor.crossing_time(u, k), [&planes, ip, k] {
                    planes[k - 1]->handoff_client(ip, *planes[k]);
                });
        }
    }

    HandoffDigest digest;
    sharded.run();
    digest.events = sharded.events_executed();
    digest.messages = sharded.messages_delivered();
    digest.now_ns = sharded.now().ns();
    std::ostringstream os;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        os << "cell" << c << " out=" << planes[c]->handoffs_out()
           << " in=" << planes[c]->handoffs_in()
           << " handed=" << planes[c]->flows_handed_off()
           << " adopted=" << planes[c]->flows_adopted()
           << " live=" << planes[c]->memory().size()
           << " pins=" << planes[c]->packet_ins() << "\n";
    }
    os << "agg handed=" << aggregator.total_flows_handed_off()
       << " adopted=" << aggregator.total_flows_adopted()
       << " live=" << aggregator.total_live_flows() << "\n";
    digest.state = os.str();

    // Conservation: every flow handed off was adopted exactly once, and all
    // of them ended up at the corridor's last cell.
    std::uint64_t handed = 0, adopted = 0;
    for (const auto& plane : planes) {
        handed += plane->flows_handed_off();
        adopted += plane->flows_adopted();
    }
    EXPECT_EQ(handed, std::uint64_t{kUes} * (kCells - 1));
    EXPECT_EQ(adopted, handed);
    EXPECT_EQ(planes[kCells - 1]->memory().size(), kUes);
    for (std::uint32_t c = 0; c + 1 < kCells; ++c) {
        EXPECT_EQ(planes[c]->memory().size(), 0u) << "cell" << c;
    }
    return digest;
}

TEST(CrossShardHandoffTest, ConservedAndIdenticalEverywhere) {
    const HandoffDigest base =
        run_handoff_scenario(1, 1, sim::SyncMode::kChannel);
    EXPECT_GT(base.events, 0u);
    EXPECT_GT(base.messages, 0u);

    for (const auto sync : {sim::SyncMode::kBarrier, sim::SyncMode::kChannelLocked,
                            sim::SyncMode::kChannel}) {
        for (const auto& [shards, workers] :
             std::vector<std::pair<std::size_t, std::size_t>>{
                 {1, 1}, {2, 1}, {2, 4}, {8, 1}, {8, 4}}) {
            const HandoffDigest run = run_handoff_scenario(shards, workers, sync);
            EXPECT_EQ(run.events, base.events)
                << shards << "x" << workers << " sync " << static_cast<int>(sync);
            EXPECT_EQ(run.messages, base.messages)
                << shards << "x" << workers << " sync " << static_cast<int>(sync);
            EXPECT_EQ(run.now_ns, base.now_ns)
                << shards << "x" << workers << " sync " << static_cast<int>(sync);
            EXPECT_EQ(run.state, base.state)
                << shards << "x" << workers << " sync " << static_cast<int>(sync);
        }
    }
}

TEST(CrossShardHandoffTest, SameDomainHandoffIsLocal) {
    // Both shards in one domain: the handoff must not touch Domain::post
    // (no lookahead between a domain and itself) and still conserve flows.
    sim::ShardedSimulation::Options options;
    options.lookahead = milliseconds(25);
    sim::ShardedSimulation host(options);
    auto& domain = host.add_domain("site");
    ControlPlaneAggregator aggregator(domain);
    ControlPlaneShard::Config config;
    config.flow_memory.track_clients = true;
    ControlPlaneShard a(domain, aggregator, config);
    ControlPlaneShard b(domain, aggregator, config);

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 5}, 80};
    const net::Ipv4 ip{10, 0, 1, 1};
    domain.sim().schedule_at(milliseconds(1), [&] {
        a.packet_in(ip, address, "web", net::NodeId{100}, 8080, "siteA");
    });
    domain.sim().schedule_at(seconds(1), [&] { a.handoff_client(ip, b); });
    host.run();

    EXPECT_EQ(a.flows_handed_off(), 1u);
    EXPECT_EQ(b.flows_adopted(), 1u);
    EXPECT_EQ(a.memory().size(), 0u);
    EXPECT_EQ(b.memory().size(), 1u);
}

} // namespace
} // namespace tedge::sdn
