// Controller configuration parsing and C3 testbed construction tests, plus
// whole-system determinism properties.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "testbed/c3.hpp"
#include "workload/bigflows.hpp"
#include "workload/runner.hpp"

namespace tedge {
namespace {

// ------------------------------------------------------------------ config

TEST(ControllerConfig, DefaultsWhenEmpty) {
    const auto config = core::parse_controller_config("");
    EXPECT_EQ(config.scheduler, sdn::kProximityScheduler);
    EXPECT_EQ(config.flow_memory.idle_timeout, sim::seconds(60));
    EXPECT_TRUE(config.scale_down_idle);
}

TEST(ControllerConfig, ParsesAllKeys) {
    const auto config = core::parse_controller_config(R"(
scheduler:
  name: round_robin
flow_memory:
  idle_timeout_s: 120
  scan_period_s: 10
dispatcher:
  flow_priority: 321
  switch_idle_timeout_s: 7
  install_cloud_flows: false
scale_down_idle: false
)");
    EXPECT_EQ(config.scheduler, sdn::kRoundRobinScheduler);
    EXPECT_EQ(config.flow_memory.idle_timeout, sim::seconds(120));
    EXPECT_EQ(config.flow_memory.scan_period, sim::seconds(10));
    EXPECT_EQ(config.dispatcher.flow_priority, 321);
    EXPECT_EQ(config.dispatcher.switch_idle_timeout, sim::seconds(7));
    EXPECT_FALSE(config.dispatcher.install_cloud_flows);
    EXPECT_FALSE(config.scale_down_idle);
}

TEST(ControllerConfig, SchedulerParamsArePassedThrough) {
    const auto config = core::parse_controller_config(R"(
scheduler:
  name: proximity
  params:
    wait: false
)");
    const auto* wait = config.scheduler_params.find("wait");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->as_bool(), false);
}

TEST(ControllerConfig, UnknownSchedulerThrows) {
    EXPECT_THROW(core::parse_controller_config("scheduler:\n  name: bogus\n"),
                 std::invalid_argument);
}

TEST(ControllerConfig, EmitParseRoundTrip) {
    sdn::ControllerConfig config;
    config.scheduler = sdn::kHierarchicalScheduler;
    config.flow_memory.idle_timeout = sim::seconds(45);
    config.dispatcher.flow_priority = 555;
    config.scale_down_idle = false;
    const auto reparsed =
        core::parse_controller_config(core::emit_controller_config(config));
    EXPECT_EQ(reparsed.scheduler, config.scheduler);
    EXPECT_EQ(reparsed.flow_memory.idle_timeout, config.flow_memory.idle_timeout);
    EXPECT_EQ(reparsed.dispatcher.flow_priority, config.dispatcher.flow_priority);
    EXPECT_EQ(reparsed.scale_down_idle, config.scale_down_idle);
}

// ----------------------------------------------------------------- testbed

TEST(C3Testbed, TopologyMatchesFig8) {
    const auto testbed = testbed::build_c3({});
    auto& topo = testbed->platform.topology();
    EXPECT_EQ(testbed->clients.size(), 20u); // 20 Raspberry Pis
    EXPECT_EQ(topo.node(testbed->egs_docker).cpu_cores, 12u);
    EXPECT_EQ(topo.node(testbed->egs_k8s).cpu_cores, 12u);
    ASSERT_NE(testbed->docker, nullptr);
    ASSERT_NE(testbed->k8s, nullptr);
    EXPECT_EQ(testbed->platform.clusters().size(), 2u);

    // The edge is much closer to clients than the cloud.
    const auto to_edge =
        topo.latency(testbed->clients[0], testbed->egs_docker);
    const auto to_cloud =
        topo.latency(testbed->clients[0], testbed->platform.cloud_node());
    EXPECT_LT(to_edge * 10, to_cloud);
}

TEST(C3Testbed, RegistriesServeTable1Images) {
    const auto testbed = testbed::build_c3({});
    for (const auto& service : testbed::table1_services()) {
        for (const auto& image : service.images) {
            auto* home = image.ref.registry == "gcr.io"
                             ? testbed->gcr
                             : testbed->docker_hub;
            EXPECT_NE(home->find(image.ref), nullptr) << image.ref.full();
            EXPECT_NE(testbed->private_registry->find(image.ref), nullptr);
        }
    }
}

TEST(C3Testbed, Table1CatalogMatchesPaper) {
    const auto& catalog = testbed::table1_services();
    ASSERT_EQ(catalog.size(), 4u);
    const auto& asm_svc = testbed::service_by_key("asm");
    EXPECT_EQ(asm_svc.images[0].total_size(), sim::kib(6.18));
    EXPECT_EQ(asm_svc.images[0].layer_count(), 1u);
    const auto& nginx = testbed::service_by_key("nginx");
    EXPECT_EQ(nginx.images[0].total_size(), sim::mib(135));
    EXPECT_EQ(nginx.images[0].layer_count(), 6u);
    const auto& resnet = testbed::service_by_key("resnet");
    EXPECT_EQ(resnet.images[0].total_size(), sim::mib(308));
    EXPECT_EQ(resnet.images[0].layer_count(), 9u);
    EXPECT_EQ(resnet.http_method, "POST");
    EXPECT_EQ(resnet.request_size, sim::kib(83));
    const auto& nginx_py = testbed::service_by_key("nginx_py");
    ASSERT_EQ(nginx_py.images.size(), 2u);
    sim::Bytes total = 0;
    std::size_t layers = 0;
    for (const auto& image : nginx_py.images) {
        total += image.total_size();
        layers += image.layer_count();
    }
    EXPECT_EQ(total, sim::mib(135) + sim::mib(46)); // 181 MiB
    EXPECT_EQ(layers, 7u);
    EXPECT_THROW(static_cast<void>(testbed::service_by_key("nope")), std::invalid_argument);
    // Nginx+Py shares the nginx layers (same digests).
    EXPECT_EQ(nginx_py.images[0].layers[0].digest,
              nginx.images[0].layers[0].digest);
}

TEST(C3Testbed, ServicesAnnotateAndResolveProfiles) {
    const auto testbed = testbed::build_c3({});
    testbed->register_table1_services();
    auto& registry = testbed->platform.service_registry();
    EXPECT_EQ(registry.size(), 4u);
    for (const auto& service : testbed::table1_services()) {
        const auto* annotated = registry.lookup(service.address);
        ASSERT_NE(annotated, nullptr) << service.key;
        for (const auto& container : annotated->spec.containers) {
            EXPECT_NE(container.app, nullptr)
                << service.key << "/" << container.name;
        }
    }
}

TEST(C3Testbed, PrivateMirrorOptionRoutesAllPulls) {
    testbed::C3Options options;
    options.with_k8s = false;
    options.use_private_registry_mirror = true;
    const auto testbed = testbed::build_c3(options);
    const auto ref = *container::ImageRef::parse("nginx:1.23.2");
    EXPECT_EQ(testbed->platform.registries().resolve(ref),
              testbed->private_registry);
}

// ------------------------------------------------------------ determinism

double run_experiment_median(std::uint64_t seed) {
    testbed::C3Options options;
    options.seed = seed;
    options.with_k8s = false;
    options.controller.scale_down_idle = false;
    auto testbed = testbed::build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    workload::BigFlowsOptions trace_options;
    trace_options.services = 4;
    trace_options.requests = 120;
    trace_options.horizon = sim::seconds(60);
    trace_options.clients = 20;
    trace_options.seed = seed;
    const auto trace = workload::synthesize_bigflows(trace_options);

    std::vector<net::ServiceAddress> addresses;
    for (const auto& service : testbed::table1_services()) {
        addresses.push_back(service.address);
    }
    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {120};
    auto& metrics = runner.replay(trace, replay);

    sim::SampleSet all;
    for (const auto& record : metrics.records()) {
        if (record.ok) all.add_time(record.time_total);
    }
    return all.median();
}

TEST(Determinism, SameSeedSameResult) {
    EXPECT_DOUBLE_EQ(run_experiment_median(7), run_experiment_median(7));
}

TEST(Determinism, DifferentSeedDifferentResult) {
    EXPECT_NE(run_experiment_median(7), run_experiment_median(8));
}

} // namespace
} // namespace tedge
