// Multi-ingress (multi-gNB) and client-mobility tests: the dispatcher
// tracks the clients' current attachment point, installs flows on the
// switch the packet actually entered through, and FlowMemory makes the
// re-dispatch after a handover instant (no new scheduling, no new
// deployment) -- the transparent-access analogue of Follow-Me-Cloud-style
// continuity (paper §III related work; §IV-B location tracking).
#include <gtest/gtest.h>

#include "core/edge_platform.hpp"

namespace tedge::sdn {
namespace {

using sim::milliseconds;
using sim::seconds;

struct MobilityFixture : ::testing::Test {
    MobilityFixture() {
        client = platform.add_client("ue", net::Ipv4{10, 0, 1, 1});
        edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        platform.add_cloud();
        gnb2 = &platform.add_ingress("gnb2", sim::microseconds(250));

        auto& hub = platform.add_registry({.host = "docker.io"});
        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(8), 2);
        hub.put(image);

        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(15);
        app.service_median = sim::microseconds(150);
        app.port = 80;
        platform.add_app_profile("web:1", app);

        platform.add_docker_cluster("edge", edge);
        address = {net::Ipv4{203, 0, 113, 90}, 80};
        platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
        sdn::ControllerConfig config;
        config.scale_down_idle = false;
        config.flow_memory.idle_timeout = seconds(300);
        platform.start_controller(edge, config);
    }

    net::HttpResult request_and_wait() { return request_and_wait_from(client); }

    net::HttpResult request_and_wait_from(net::NodeId source) {
        net::HttpResult result;
        bool done = false;
        platform.http_request(source, address, 100, [&](const net::HttpResult& r) {
            result = r;
            done = true;
        });
        while (!done) {
            platform.simulation().run_until(platform.simulation().now() +
                                            seconds(1));
        }
        return result;
    }

    core::EdgePlatform platform;
    net::NodeId client, edge;
    net::OvsSwitch* gnb2 = nullptr;
    net::ServiceAddress address;
};

TEST_F(MobilityFixture, SecondIngressIsServedByTheSameController) {
    // Attach the client to gNB2 from the start.
    platform.connect_client_to_ingress(client, *gnb2, sim::microseconds(300));
    const auto result = request_and_wait();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, edge);
    // The flow landed in gNB2's table, not the primary's.
    EXPECT_EQ(gnb2->table().size(), 1u);
    EXPECT_EQ(platform.ingress().table().size(), 0u);
    // Location tracking points at gNB2.
    const auto location =
        platform.controller().dispatcher().client_location(net::Ipv4{10, 0, 1, 1});
    ASSERT_TRUE(location);
    EXPECT_EQ(*location, gnb2->node());
}

TEST_F(MobilityFixture, HandoverReusesFlowMemoryWithoutRedeploying) {
    // First request through the primary gNB: deploys on demand.
    const auto first = request_and_wait();
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_EQ(platform.deployment_engine().records().size(), 1u);
    const auto packet_ins_before =
        platform.controller().dispatcher().stats().packet_ins;

    // Handover: the client moves into gNB2's cell.
    platform.connect_client_to_ingress(client, *gnb2, sim::microseconds(300));

    // Next request enters at gNB2 -> table miss there -> packet-in -> but
    // FlowMemory answers instantly; no scheduling pass, no deployment.
    const auto after = request_and_wait();
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.server_node, edge);
    EXPECT_LT(after.time_total, milliseconds(10));
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins, packet_ins_before + 1);
    EXPECT_EQ(stats.memory_hits, 1u);
    EXPECT_EQ(platform.deployment_engine().records().size(), 1u); // unchanged
    EXPECT_EQ(gnb2->table().size(), 1u);
    // The handover swept the stale flow off the old cell's table.
    EXPECT_EQ(platform.ingress().table().size(), 0u);
    // Location updated to the new cell.
    EXPECT_EQ(*platform.controller().dispatcher().client_location(
                  net::Ipv4{10, 0, 1, 1}),
              gnb2->node());
}

TEST_F(MobilityFixture, EvictionReachesAllSwitches) {
    // Two UEs, one per cell (a single roaming UE no longer leaves a flow on
    // the old cell -- the handover sweep evicts it): flows on both switches,
    // then a service-wide eviction must clear both tables.
    const auto ue2 = platform.add_client("ue2", net::Ipv4{10, 0, 1, 2});
    platform.connect_client_to_ingress(ue2, *gnb2, sim::microseconds(300));
    request_and_wait();
    request_and_wait_from(ue2);
    ASSERT_EQ(platform.ingress().table().size(), 1u);
    ASSERT_EQ(gnb2->table().size(), 1u);

    const auto* annotated = platform.service_registry().lookup(address);
    platform.controller().dispatcher().on_best_ready(annotated->spec);
    platform.simulation().run_until(platform.simulation().now() + seconds(1));
    EXPECT_EQ(platform.ingress().table().size(), 0u);
    EXPECT_EQ(gnb2->table().size(), 0u);
}

TEST_F(MobilityFixture, HandoverBackAndForthStaysConsistent) {
    request_and_wait(); // deploy via primary
    for (int i = 0; i < 3; ++i) {
        if (i == 0) {
            platform.connect_client_to_ingress(client, *gnb2,
                                               sim::microseconds(300));
        } else {
            platform.handover_client(client,
                                     i % 2 == 0 ? *gnb2 : platform.ingress());
        }
        const auto result = request_and_wait();
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.server_node, edge);
    }
    // No extra deployments through all the moves.
    EXPECT_EQ(platform.deployment_engine().records().size(), 1u);
}

} // namespace
} // namespace tedge::sdn
