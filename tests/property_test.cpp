// Randomized property tests against reference models:
//  - FlowTable vs a brute-force matcher,
//  - yamlite emit/parse round-trip on random documents,
//  - SharedLink byte conservation and completion-order sanity,
//  - Trace CSV round-trip on random traces.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "workload/trace.hpp"
#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace tedge {
namespace {

// ----------------------------------------------------- FlowTable vs oracle

net::Packet random_packet(sim::Rng& rng) {
    net::Packet p;
    p.src_ip = net::Ipv4{static_cast<std::uint32_t>(rng.uniform_int(1, 4)), 0, 0,
                         static_cast<std::uint8_t>(rng.uniform_int(1, 4))};
    p.dst_ip = net::Ipv4{static_cast<std::uint32_t>(rng.uniform_int(1, 4)), 0, 0,
                         static_cast<std::uint8_t>(rng.uniform_int(1, 4))};
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 4));
    return p;
}

net::FlowEntry random_entry(sim::Rng& rng, std::uint64_t cookie) {
    net::FlowEntry e;
    if (rng.chance(0.5)) e.match.src_ip = random_packet(rng).src_ip;
    if (rng.chance(0.7)) e.match.dst_ip = random_packet(rng).dst_ip;
    if (rng.chance(0.7)) e.match.dst_port = random_packet(rng).dst_port;
    if (rng.chance(0.3)) e.match.proto = net::Proto::kTcp;
    e.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 5) * 100);
    e.cookie = cookie;
    return e;
}

/// Brute-force reference: best = highest priority, then most specific, then
/// ... the table keeps insertion order for full ties, which the oracle
/// reproduces by scanning in insertion order and using strict improvement.
const net::FlowEntry* oracle_best(const std::vector<net::FlowEntry>& entries,
                                  const net::Packet& p) {
    const net::FlowEntry* best = nullptr;
    for (const auto& e : entries) {
        if (!e.match.matches(p)) continue;
        if (best == nullptr || e.priority > best->priority ||
            (e.priority == best->priority &&
             e.match.specificity() > best->match.specificity())) {
            best = &e;
        }
    }
    return best;
}

class FlowTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableFuzz, MatchesBruteForceOracle) {
    sim::Rng rng(GetParam());
    net::FlowTable table;
    std::vector<net::FlowEntry> reference;
    for (std::uint64_t i = 0; i < 40; ++i) {
        const auto entry = random_entry(rng, i + 1);
        // Mirror the table's overwrite rule in the reference model.
        const auto it = std::find_if(
            reference.begin(), reference.end(), [&](const net::FlowEntry& e) {
                return e.match == entry.match && e.priority == entry.priority;
            });
        if (it != reference.end()) {
            *it = entry;
        } else {
            reference.push_back(entry);
        }
        table.install(entry, sim::SimTime::zero());
    }
    ASSERT_EQ(table.size(), reference.size());

    for (int i = 0; i < 500; ++i) {
        const auto packet = random_packet(rng);
        const auto got = table.lookup(packet, sim::SimTime::zero());
        const auto* want = oracle_best(reference, packet);
        if (want == nullptr) {
            EXPECT_FALSE(got) << "query " << i;
        } else {
            ASSERT_TRUE(got) << "query " << i;
            EXPECT_EQ(got->cookie, want->cookie) << "query " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// -------------------------------------------------- yamlite round-trip fuzz

yamlite::Node random_node(sim::Rng& rng, int depth) {
    const double r = rng.uniform01();
    if (depth >= 3 || r < 0.45) {
        // Scalars, including nasty ones the emitter must quote.
        static const char* kScalars[] = {"plain",  "true",   "null", "0",
                                         "a: b",   "# hash", "",     "-dash",
                                         "sp ace", "1.5",    "[x]",  "{a}"};
        return yamlite::Node{
            kScalars[rng.uniform_int(0, std::size(kScalars) - 1)]};
    }
    if (r < 0.7) {
        auto seq = yamlite::Node::make_seq();
        const auto n = rng.uniform_int(0, 4);
        for (int i = 0; i < n; ++i) seq.push_back(random_node(rng, depth + 1));
        return seq;
    }
    auto map = yamlite::Node::make_map();
    const auto n = rng.uniform_int(0, 4);
    for (int i = 0; i < n; ++i) {
        map.set("k" + std::to_string(i), random_node(rng, depth + 1));
    }
    return map;
}

class YamlRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YamlRoundTripFuzz, EmitParseIsIdentity) {
    sim::Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        auto doc = random_node(rng, 0);
        if (doc.is_scalar()) continue; // top level must be a collection
        if (doc.size() == 0) continue;
        const auto text = yamlite::emit(doc);
        const auto reparsed = yamlite::parse(text);
        EXPECT_EQ(doc, reparsed) << "document " << i << ":\n" << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlRoundTripFuzz,
                         ::testing::Values(11, 12, 13, 14, 15));

// ------------------------------------------------- SharedLink conservation

class SharedLinkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedLinkFuzz, AllBytesDeliveredAndThroughputBounded) {
    sim::Rng rng(GetParam());
    sim::Simulation simulation;
    net::SharedLink link(simulation, sim::mbit_per_sec(80)); // 10 MB/s

    sim::Bytes total = 0;
    int completed = 0;
    int started = 0;
    for (int i = 0; i < 30; ++i) {
        const auto size = rng.uniform_int(1'000, 2'000'000);
        const auto at = sim::from_seconds(rng.uniform(0.0, 2.0));
        total += size;
        ++started;
        simulation.schedule(at, [&link, &completed, size] {
            link.start_transfer(size, [&completed] { ++completed; });
        });
    }
    simulation.run();
    EXPECT_EQ(completed, started);
    EXPECT_EQ(link.bytes_completed(), total);
    // The pipe can never beat its capacity: finishing `total` bytes takes at
    // least total/rate seconds from the first arrival (arrivals start at 0).
    const double min_seconds = static_cast<double>(total) / 10e6;
    EXPECT_GE(simulation.now().seconds() + 1e-6, min_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedLinkFuzz, ::testing::Values(21, 22, 23, 24));

// -------------------------------------------------------- Trace CSV fuzz

class TraceCsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceCsvFuzz, CsvRoundTripPreservesEvents) {
    sim::Rng rng(GetParam());
    workload::Trace trace;
    const auto n = rng.uniform_int(1, 200);
    for (int i = 0; i < n; ++i) {
        workload::TraceEvent event;
        event.at = sim::from_ms(rng.uniform(0.0, 300'000.0));
        event.client = static_cast<std::uint32_t>(rng.uniform_int(0, 19));
        event.service = static_cast<std::uint32_t>(rng.uniform_int(0, 41));
        trace.add(event);
    }
    trace.finalize();
    const auto reparsed = workload::Trace::from_csv(trace.to_csv());
    ASSERT_EQ(reparsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        // Times survive within CSV precision (µs); ids exactly.
        EXPECT_NEAR(reparsed.events()[i].at.ms(), trace.events()[i].at.ms(), 1e-3);
        EXPECT_EQ(reparsed.events()[i].client, trace.events()[i].client);
        EXPECT_EQ(reparsed.events()[i].service, trace.events()[i].service);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceCsvFuzz, ::testing::Values(31, 32, 33));

} // namespace
} // namespace tedge
