// Differential and liveness tests for the asynchronous channel-clock
// coordinator: barrier-vs-channel byte identity at several shard/worker
// combinations, per-directed-channel lookahead contracts, null-message
// propagation past silent upstream domains, counter determinism on the
// single-worker path, and the core-pinning option.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/partition.hpp"
#include "net/topology.hpp"
#include "simcore/logging.hpp"
#include "simcore/sharded_simulation.hpp"
#include "simcore/simulation.hpp"
#include "simcore/spsc_ring.hpp"
#include "simcore/thread_pool.hpp"

namespace tedge {
namespace {

using sim::DomainId;
using sim::ShardedSimulation;
using sim::SimTime;
using sim::SyncMode;

// ------------------------------------------------------------ scenario rig

/// Everything observable about one run, for byte-level comparison.
struct RunDigest {
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    std::int64_t now_ns = 0;
    std::string metrics;
    std::string trace;
    std::string logs;

    bool operator==(const RunDigest&) const = default;
};

struct ScenarioConfig {
    SyncMode sync = SyncMode::kChannel;
    std::size_t shards = 0;
    std::size_t workers = 1;
    bool explicit_channels = false;  ///< asymmetric per-pair lookaheads
    bool pin_lanes = false;
    double grain = -1.0;  ///< horizon grain override; negative keeps default
};

/// Four producer domains stream user events into a sink domain across 5 ms
/// channels while running their own daemon housekeeping; the sink counts,
/// logs, and traces everything. Every per-domain sink (metrics, trace, logs,
/// RNG-in-control-flow) participates so the digest catches any divergence
/// between coordinators.
RunDigest run_scenario(const ScenarioConfig& config,
                       std::uint64_t* null_messages = nullptr,
                       std::uint64_t* rounds = nullptr) {
    constexpr std::size_t kProducers = 4;
    constexpr int kEventsPerProducer = 60;
    const SimTime kLookahead = sim::milliseconds(5);

    ShardedSimulation::Options options;
    options.lookahead = kLookahead;
    options.shards = config.shards;
    options.workers = config.workers;
    options.sync = config.sync;
    options.pin_lanes = config.pin_lanes;
    if (config.grain >= 0.0) options.horizon_grain = config.grain;
    ShardedSimulation sharded(options);

    std::vector<sim::Domain*> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.push_back(&sharded.add_domain("prod" + std::to_string(p)));
    }
    sim::Domain& sink = sharded.add_domain("sink");
    const DomainId sink_id = sink.id();
    sink.enable_metrics();
    sink.enable_tracing();

    if (config.explicit_channels) {
        // Producers reach the sink over a tight 5 ms hop; the reverse
        // direction (never used for payload, but it gates the producers'
        // windows in channel mode) is a slow 50 ms hop. Producer-to-producer
        // pairs get mid-range channels so the mesh stays fully connected.
        for (DomainId p = 0; p < kProducers; ++p) {
            sharded.set_channel(p, sink_id, kLookahead);
            sharded.set_channel(sink_id, p, sim::milliseconds(50));
            for (DomainId q = 0; q < kProducers; ++q) {
                if (p != q) sharded.set_channel(p, q, sim::milliseconds(20));
            }
        }
    }

    struct ProducerState {
        std::optional<sim::Logger> log;
        int sent = 0;
    };
    auto state = std::make_shared<std::vector<ProducerState>>(kProducers);
    auto sink_log = std::make_shared<sim::Logger>(
        sink.make_logger("sink", sim::LogLevel::kInfo));
    // Tick closures re-schedule themselves; they are owned here (capturing
    // the shared_ptr inside its own closure would be a reference cycle).
    std::vector<std::unique_ptr<std::function<void()>>> ticks;

    for (std::size_t p = 0; p < kProducers; ++p) {
        auto& domain = *producers[p];
        domain.enable_metrics();
        domain.enable_tracing();
        (*state)[p].log.emplace(domain.make_logger("prod", sim::LogLevel::kInfo));

        // Daemon housekeeping rides along while user work remains anywhere.
        domain.sim().schedule_periodic(
            sim::milliseconds(7),
            [&domain] { domain.metrics().counter("prod.sweep").inc(); },
            /*daemon=*/true);

        // Self-rescheduling user-event chain; the inter-arrival gap draws
        // from the domain RNG so a single perturbed draw changes every sink.
        ticks.push_back(std::make_unique<std::function<void()>>());
        auto* tick = ticks.back().get();
        *tick = [&domain, &sink, sink_id, state, sink_log, p, tick,
                 kLookahead] {
            auto& me = (*state)[p];
            const auto span = domain.tracer().begin("produce");
            domain.metrics().counter("prod.events").inc();
            const int seq = me.sent++;
            domain.post(sink_id, domain.sim().now() + kLookahead,
                        [&sink, sink_log, p, seq] {
                            sink.metrics().counter("sink.received").inc();
                            if (seq % 16 == 0) {
                                sink_log->info("got prod" + std::to_string(p) +
                                               "#" + std::to_string(seq));
                            }
                        });
            if (domain.rng().uniform01() < 0.2) {
                me.log->info("burst at #" + std::to_string(seq));
            }
            domain.tracer().end(span);
            if (me.sent < kEventsPerProducer) {
                const auto gap = sim::microseconds(
                    500 + static_cast<std::int64_t>(domain.rng().uniform01() *
                                                    4000.0));
                domain.sim().schedule(gap, *tick);
            }
        };
        domain.sim().schedule(sim::milliseconds(1 + static_cast<int>(p)), *tick);
    }

    RunDigest digest;
    sharded.run();
    sharded.run_until(sharded.now() + sim::milliseconds(50));
    digest.events = sharded.events_executed();
    digest.messages = sharded.messages_delivered();
    digest.now_ns = sharded.now().ns();
    digest.metrics = sharded.dump_metrics();
    {
        std::ostringstream os;
        sharded.write_chrome_trace(os);
        digest.trace = os.str();
    }
    {
        std::ostringstream os;
        sharded.flush_logs(os);
        digest.logs = os.str();
    }
    if (null_messages != nullptr) *null_messages = sharded.null_messages();
    if (rounds != nullptr) *rounds = sharded.rounds();
    return digest;
}

// ------------------------------------------------- barrier-vs-channel diff

// The tentpole guarantee: the asynchronous channel-clock coordinator is an
// implementation detail. Every observable byte of a run -- event counts,
// delivered messages, clocks, metrics, trace, logs -- matches the barrier
// coordinator at every shard and worker combination, with implicit-mesh and
// explicit asymmetric channel graphs alike.
TEST(ChannelSyncDifferentialTest, BarrierAndChannelProduceIdenticalRuns) {
    for (const bool explicit_channels : {false, true}) {
        ScenarioConfig base_config;
        base_config.sync = SyncMode::kBarrier;
        base_config.shards = 1;
        base_config.workers = 1;
        base_config.explicit_channels = explicit_channels;
        const RunDigest base = run_scenario(base_config);
        ASSERT_GT(base.events, 200u);
        ASSERT_GT(base.messages, 0u);
        ASSERT_FALSE(base.logs.empty());

        for (const SyncMode sync :
             {SyncMode::kBarrier, SyncMode::kChannelLocked,
              SyncMode::kChannel}) {
            for (const std::size_t shards : {1u, 2u, 8u}) {
                for (const std::size_t workers : {1u, 4u}) {
                    ScenarioConfig config = base_config;
                    config.sync = sync;
                    config.shards = shards;
                    config.workers = workers;
                    const RunDigest run = run_scenario(config);
                    const std::string label =
                        std::string(sync == SyncMode::kBarrier ? "barrier "
                                    : sync == SyncMode::kChannelLocked
                                        ? "channel-locked "
                                        : "channel ") +
                        std::to_string(shards) + "x" + std::to_string(workers) +
                        (explicit_channels ? " explicit" : " mesh");
                    EXPECT_EQ(run.events, base.events) << label;
                    EXPECT_EQ(run.messages, base.messages) << label;
                    EXPECT_EQ(run.now_ns, base.now_ns) << label;
                    EXPECT_EQ(run.metrics, base.metrics) << label;
                    EXPECT_EQ(run.trace, base.trace) << label;
                    EXPECT_EQ(run.logs, base.logs) << label;
                }
            }
        }
    }
}

// The horizon grain is purely a scheduling-pressure knob: it decides when
// a lane bothers publishing a payload-free horizon advance, never which
// events execute or in what order. Any grain -- the classic incremental
// climb at 0, the default L/4, or a full lookahead -- yields the identical
// digest, at every shard/worker combination.
TEST(ChannelSyncDifferentialTest, GrainSweepProducesIdenticalRuns) {
    ScenarioConfig base_config;
    base_config.sync = SyncMode::kBarrier;
    base_config.shards = 1;
    base_config.workers = 1;
    base_config.explicit_channels = true;
    const RunDigest base = run_scenario(base_config);

    for (const double grain : {0.0, 0.25, 1.0}) {
        for (const std::size_t shards : {2u, 8u}) {
            for (const std::size_t workers : {1u, 4u}) {
                ScenarioConfig config = base_config;
                config.sync = SyncMode::kChannel;
                config.shards = shards;
                config.workers = workers;
                config.grain = grain;
                const std::string label = "grain " + std::to_string(grain) +
                                          " " + std::to_string(shards) + "x" +
                                          std::to_string(workers);
                EXPECT_EQ(run_scenario(config), base) << label;
            }
        }
    }
}

// Core pinning is purely a wall-clock knob: a pinned multi-worker channel
// run produces the identical digest (and degrades gracefully when the host
// has fewer cores than lanes -- this container often has one).
TEST(ChannelSyncDifferentialTest, PinnedLanesChangeNothingObservable) {
    ScenarioConfig config;
    config.sync = SyncMode::kChannel;
    config.shards = 8;
    config.workers = 4;
    const RunDigest unpinned = run_scenario(config);
    config.pin_lanes = true;
    EXPECT_EQ(run_scenario(config), unpinned);
}

// Window and null-message counters are deterministic on the single-worker
// inline path (the multi-core CI gate relies on this on 1-core hosts).
TEST(ChannelSyncDifferentialTest, CountersDeterministicWithSingleWorker) {
    ScenarioConfig config;
    config.sync = SyncMode::kChannel;
    config.shards = 8;
    config.workers = 1;
    config.explicit_channels = true;
    std::uint64_t nulls_a = 0, rounds_a = 0, nulls_b = 0, rounds_b = 0;
    const RunDigest a = run_scenario(config, &nulls_a, &rounds_a);
    const RunDigest b = run_scenario(config, &nulls_b, &rounds_b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(nulls_a, nulls_b);
    EXPECT_EQ(rounds_a, rounds_b);
    EXPECT_GT(rounds_a, 0u);
}

// --------------------------------------------------- per-channel contracts

TEST(ChannelLookaheadTest, PerChannelContractsReplaceTheGlobalMinimum) {
    ShardedSimulation::Options options;
    options.shards = 1;
    options.workers = 1;
    ShardedSimulation sharded(options);
    auto& a = sharded.add_domain("a");
    auto& b = sharded.add_domain("b");
    sharded.add_domain("c");
    sharded.set_channel(a.id(), b.id(), sim::milliseconds(5));
    sharded.set_channel(b.id(), a.id(), sim::milliseconds(50));

    EXPECT_TRUE(sharded.has_explicit_channels());
    EXPECT_EQ(sharded.lookahead(), sim::milliseconds(5));
    EXPECT_EQ(a.lookahead_to(b.id()), sim::milliseconds(5));
    EXPECT_EQ(b.lookahead_to(a.id()), sim::milliseconds(50));

    // The tight direction admits a 5 ms timestamp...
    a.post(b.id(), sim::milliseconds(5), [] {});
    // ...the slow direction requires its own 50 ms bound, not the global min...
    EXPECT_THROW(b.post(a.id(), sim::milliseconds(5), [] {}), std::logic_error);
    b.post(a.id(), sim::milliseconds(50), [] {});
    // ...and a pair with no declared channel cannot talk at all.
    EXPECT_THROW(a.post(2, sim::seconds(10), [] {}), std::logic_error);
    EXPECT_THROW(static_cast<void>(sharded.channel_lookahead(a.id(), 2)),
                 std::logic_error);

    sharded.run();
    EXPECT_EQ(sharded.messages_delivered(), 2u);

    // Channel lookaheads must be positive and finite.
    EXPECT_THROW(sharded.set_channel(0, 1, SimTime::zero()),
                 std::invalid_argument);
    EXPECT_THROW(sharded.set_channel(0, 1, SimTime::max()),
                 std::invalid_argument);
}

TEST(ChannelLookaheadTest, PartitionDerivesDirectedChannels) {
    net::Topology topo;
    const auto a = topo.add_switch("a");
    const auto b = topo.add_switch("b");
    const auto c = topo.add_switch("c");
    topo.add_link(a, b, sim::milliseconds(25), sim::mbit_per_sec(1'000));
    topo.add_link(b, c, sim::milliseconds(40), sim::mbit_per_sec(1'000));
    topo.add_link(a, c, sim::milliseconds(10), sim::mbit_per_sec(1'000));

    // {a} | {b} | {c}: every link is cut; each directed pair keeps its own
    // minimum latency, in both directions.
    net::TopologyPartition partition(topo, {0, 1, 2});
    EXPECT_EQ(partition.lookahead(), sim::milliseconds(10));
    const auto& channels = partition.channels();
    ASSERT_EQ(channels.size(), 6u);
    auto lookahead_of = [&](DomainId src, DomainId dst) {
        for (const auto& ch : channels) {
            if (ch.src == src && ch.dst == dst) return ch.lookahead;
        }
        return SimTime::zero();
    };
    EXPECT_EQ(lookahead_of(0, 1), sim::milliseconds(25));
    EXPECT_EQ(lookahead_of(1, 0), sim::milliseconds(25));
    EXPECT_EQ(lookahead_of(1, 2), sim::milliseconds(40));
    EXPECT_EQ(lookahead_of(0, 2), sim::milliseconds(10));
    EXPECT_EQ(lookahead_of(2, 0), sim::milliseconds(10));

    // Point lookups agree with the channel list; absent pairs (including the
    // trivial self-pair) read as "no channel".
    EXPECT_EQ(partition.channel_lookahead(0, 1), sim::milliseconds(25));
    EXPECT_EQ(partition.channel_lookahead(1, 2), sim::milliseconds(40));
    EXPECT_EQ(partition.channel_lookahead(2, 0), sim::milliseconds(10));
    EXPECT_EQ(partition.channel_lookahead(0, 0), SimTime::max());

    ShardedSimulation sharded;
    auto& da = sharded.add_domain("a");
    sharded.add_domain("b");
    sharded.add_domain("c");
    partition.apply_channels(sharded);
    EXPECT_EQ(sharded.lookahead(), sim::milliseconds(10));
    EXPECT_EQ(da.lookahead_to(1), sim::milliseconds(25));
    EXPECT_EQ(da.lookahead_to(2), sim::milliseconds(10));
}

// ------------------------------------------------------------- liveness

// The classic conservative-sync liveness scenario: a receiver gated by a
// completely silent upstream channel. Null messages (horizon publications
// with no payload) must carry the receiver past the silence -- and their
// count must stay bounded, not proportional to simulated time over the
// smallest lookahead.
TEST(NullMessageLivenessTest, SilentUpstreamDoesNotStallReceiver) {
    ShardedSimulation::Options options;
    options.sync = SyncMode::kChannel;
    options.shards = 0;   // one lane per domain
    options.workers = 1;  // deterministic inline coordinator
    // Pin the grain (rather than inheriting TEDGE_GRAIN) so the lift-vs-
    // climb contract below holds under any environment the suite runs in.
    options.horizon_grain = 0.25;
    ShardedSimulation sharded(options);
    auto& talker = sharded.add_domain("talker");
    auto& silent = sharded.add_domain("silent");
    auto& receiver = sharded.add_domain("receiver");

    // Asymmetric lookaheads: the silent domain's channel is far tighter than
    // the talker's, so the receiver's safe bound is dominated by silence.
    sharded.set_channel(talker.id(), receiver.id(), sim::milliseconds(20));
    sharded.set_channel(silent.id(), receiver.id(), sim::milliseconds(1));
    sharded.set_channel(receiver.id(), talker.id(), sim::milliseconds(20));
    sharded.set_channel(receiver.id(), silent.id(), sim::milliseconds(1));

    int received = 0;
    constexpr int kMessages = 50;
    std::function<void()> tick;
    int sent = 0;
    tick = [&] {
        talker.post(receiver.id(),
                    talker.sim().now() + sim::milliseconds(20),
                    [&received] { ++received; });
        if (++sent < kMessages) talker.sim().schedule(sim::milliseconds(10), tick);
    };
    talker.sim().schedule(SimTime::zero(), tick);

    sharded.run();

    EXPECT_EQ(received, kMessages);
    // At the default grain the quiescence-time horizon lift replaces the
    // incremental climb past silence, so the null count stays far below the
    // textbook virtual-time-over-lookahead cost -- typically zero.
    EXPECT_LT(sharded.null_messages(), 5000u);

    // Grain 0 restores the classic incremental climb: null messages step the
    // silent cycle one lookahead at a time, so the count is positive but
    // still bounded by virtual time over the cycle lookahead (hundreds
    // here), never unbounded or per-event.
    ShardedSimulation::Options classic_options = options;
    classic_options.horizon_grain = 0.0;
    ShardedSimulation classic(classic_options);
    auto& tc = classic.add_domain("talker");
    auto& sc = classic.add_domain("silent");
    auto& rc = classic.add_domain("receiver");
    classic.set_channel(tc.id(), rc.id(), sim::milliseconds(20));
    classic.set_channel(sc.id(), rc.id(), sim::milliseconds(1));
    classic.set_channel(rc.id(), tc.id(), sim::milliseconds(20));
    classic.set_channel(rc.id(), sc.id(), sim::milliseconds(1));
    int received_classic = 0;
    std::function<void()> tick_classic;
    int sent_classic = 0;
    tick_classic = [&] {
        tc.post(rc.id(), tc.sim().now() + sim::milliseconds(20),
                [&received_classic] { ++received_classic; });
        if (++sent_classic < kMessages) {
            tc.sim().schedule(sim::milliseconds(10), tick_classic);
        }
    };
    tc.sim().schedule(SimTime::zero(), tick_classic);
    classic.run();
    EXPECT_EQ(received_classic, kMessages);
    EXPECT_GT(classic.null_messages(), 0u);
    EXPECT_LT(classic.null_messages(), 5000u);
    EXPECT_GT(classic.null_messages(), sharded.null_messages());

    // And the count is reproducible (single-worker inline coordinator).
    ShardedSimulation::Options repeat_options = options;
    ShardedSimulation repeat(repeat_options);
    auto& t2 = repeat.add_domain("talker");
    auto& s2 = repeat.add_domain("silent");
    auto& r2 = repeat.add_domain("receiver");
    repeat.set_channel(t2.id(), r2.id(), sim::milliseconds(20));
    repeat.set_channel(s2.id(), r2.id(), sim::milliseconds(1));
    repeat.set_channel(r2.id(), t2.id(), sim::milliseconds(20));
    repeat.set_channel(r2.id(), s2.id(), sim::milliseconds(1));
    int received2 = 0;
    std::function<void()> tick2;
    int sent2 = 0;
    tick2 = [&] {
        t2.post(r2.id(), t2.sim().now() + sim::milliseconds(20),
                [&received2] { ++received2; });
        if (++sent2 < kMessages) t2.sim().schedule(sim::milliseconds(10), tick2);
    };
    t2.sim().schedule(SimTime::zero(), tick2);
    repeat.run();
    EXPECT_EQ(received2, kMessages);
    EXPECT_EQ(repeat.null_messages(), sharded.null_messages());
}

// run_until must also clear silent-channel gating: every clock reaches the
// deadline even though two of the three domains never execute anything.
TEST(NullMessageLivenessTest, RunUntilAdvancesClocksPastSilentChannels) {
    ShardedSimulation::Options options;
    options.sync = SyncMode::kChannel;
    options.workers = 1;
    ShardedSimulation sharded(options);
    auto& a = sharded.add_domain("a");
    auto& b = sharded.add_domain("b");
    auto& c = sharded.add_domain("c");
    sharded.set_channel(a.id(), b.id(), sim::milliseconds(2));
    sharded.set_channel(b.id(), c.id(), sim::milliseconds(3));
    sharded.set_channel(c.id(), a.id(), sim::milliseconds(5));

    int fired = 0;
    a.sim().schedule(sim::milliseconds(30), [&] { ++fired; });
    const SimTime deadline = sim::milliseconds(80);
    sharded.run_until(deadline);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(a.sim().now(), deadline);
    EXPECT_EQ(b.sim().now(), deadline);
    EXPECT_EQ(c.sim().now(), deadline);
}

// ---------------------------------------------------- SPSC mailbox rings

using MessageBatch = std::vector<int>;

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(sim::SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(sim::SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(sim::SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(sim::SpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(sim::SpscRing<int>(65).capacity(), 128u);
}

// Indices are free-running (they wrap the slot array via the mask, never
// themselves reset), so FIFO order and emptiness must survive many times
// the capacity in traffic.
TEST(SpscRingTest, WraparoundPreservesFifoOrder) {
    sim::SpscRing<MessageBatch> ring(4);
    ASSERT_EQ(ring.capacity(), 4u);
    int produced = 0;
    int consumed = 0;
    for (int lap = 0; lap < 10; ++lap) {
        // Vary the burst length so head/tail land on every phase of the mask.
        const int burst = 1 + lap % static_cast<int>(ring.capacity());
        for (int i = 0; i < burst; ++i) {
            MessageBatch batch{produced++};
            ASSERT_TRUE(ring.try_push(batch));
        }
        EXPECT_EQ(ring.size(), static_cast<std::size_t>(burst));
        MessageBatch out;
        while (ring.try_pop(out)) {
            ASSERT_EQ(out.size(), 1u);
            EXPECT_EQ(out.front(), consumed++);
        }
        EXPECT_TRUE(ring.empty());
    }
    EXPECT_EQ(consumed, produced);
    EXPECT_GT(produced, static_cast<int>(ring.capacity()) * 2);
}

// A full ring refuses the push and leaves the caller's batch untouched --
// the coordinator relies on this to keep the batch alive while it drains
// its own inbound rings to make space.
TEST(SpscRingTest, FullRingBackpressureLeavesBatchIntact) {
    sim::SpscRing<MessageBatch> ring(2);
    MessageBatch a{1}, b{2}, overflow{3, 4, 5};
    ASSERT_TRUE(ring.try_push(a));
    ASSERT_TRUE(ring.try_push(b));
    EXPECT_FALSE(ring.try_push(overflow));
    EXPECT_EQ(overflow, (MessageBatch{3, 4, 5}));  // untouched on failure
    MessageBatch out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, MessageBatch{1});
    EXPECT_TRUE(ring.try_push(overflow));  // space freed -> push succeeds
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, MessageBatch{2});
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, (MessageBatch{3, 4, 5}));
    EXPECT_FALSE(ring.try_pop(out));
}

// Swap-based exchange recycles heap capacity both ways: the consumer hands
// a drained vector back via its pop argument and the producer receives it
// from the next push into that slot.
TEST(SpscRingTest, SwapRecyclesSlotCapacity) {
    sim::SpscRing<MessageBatch> ring(2);
    MessageBatch batch;
    batch.reserve(1024);
    batch.push_back(7);
    ASSERT_TRUE(ring.try_push(batch));
    EXPECT_TRUE(batch.empty());  // got the slot's (empty) previous value

    MessageBatch out;
    out.reserve(2048);  // consumer's recycled buffer goes back into the slot
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, MessageBatch{7});
    EXPECT_GE(out.capacity(), 1024u);

    batch.clear();
    ASSERT_TRUE(ring.try_push(batch));  // lands in a fresh slot
    MessageBatch second;
    ASSERT_TRUE(ring.try_push(second));  // reuses the popped slot...
    EXPECT_GE(second.capacity(), 2048u);  // ...handing its buffer back
}

// Destroying a ring with undrained batches must release them cleanly; the
// coordinator tears rings down at shutdown with whatever the consumer never
// claimed still aboard. shared_ptr elements make a leak observable.
TEST(SpscRingTest, DestructionReleasesInFlightBatches) {
    auto tracker = std::make_shared<int>(42);
    std::weak_ptr<int> watch = tracker;
    {
        sim::SpscRing<std::vector<std::shared_ptr<int>>> ring(8);
        std::vector<std::shared_ptr<int>> batch{tracker, tracker, tracker};
        ASSERT_TRUE(ring.try_push(batch));
        std::vector<std::shared_ptr<int>> partial{tracker};
        ASSERT_TRUE(ring.try_push(partial));
        std::vector<std::shared_ptr<int>> drained;
        ASSERT_TRUE(ring.try_pop(drained));  // one batch consumed...
        tracker.reset();
        EXPECT_FALSE(watch.expired());  // ...one still in flight
        // Ring destroyed here with the partial batch undrained.
    }
    EXPECT_TRUE(watch.expired());
}

// The SPSC pair under real concurrency: one producer thread, one consumer
// thread, no locks. TSan verifies the release/acquire pairing; the assert
// verifies no batch is lost, duplicated, or reordered.
TEST(SpscRingTest, ConcurrentProducerConsumerDeliversEverythingInOrder) {
    sim::SpscRing<MessageBatch> ring(8);
    constexpr int kBatches = 5000;
    // Yield (not cpu_relax) on full/empty: on a single-core host a pure spin
    // burns a whole scheduler quantum before the peer can run.
    std::thread producer([&ring] {
        for (int i = 0; i < kBatches;) {
            MessageBatch batch{i};
            if (ring.try_push(batch)) {
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });
    int expected = 0;
    MessageBatch out;
    while (expected < kBatches) {
        if (ring.try_pop(out)) {
            ASSERT_EQ(out.size(), 1u);
            ASSERT_EQ(out.front(), expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------- eventcount liveness

// The park/unpark protocol must not lose wakeups: a waiter that takes a
// ticket, rechecks, and parks is always released by a notify that follows
// its prepare. Run under TSan in CI; a lost wakeup hangs the test (and the
// 60s gtest default timeout in CI flags it), a data race trips TSan.
TEST(EventcountTest, NotifyAfterPrepareAlwaysReleasesWaiter) {
    sim::Eventcount gate;
    std::atomic<int> stage{0};
    std::atomic<bool> done{false};
    std::uint64_t parked_ns = 0;

    std::thread waiter([&] {
        while (!done.load(std::memory_order_acquire)) {
            const auto ticket = gate.prepare();
            if (stage.exchange(0, std::memory_order_acq_rel) != 0) continue;
            if (done.load(std::memory_order_acquire)) break;
            gate.wait(ticket, &parked_ns, /*spin=*/16);
        }
    });

    for (int i = 0; i < 2000; ++i) {
        stage.store(1, std::memory_order_release);
        gate.notify();
    }
    done.store(true, std::memory_order_release);
    gate.notify();
    waiter.join();
    SUCCEED();  // completion *is* the assertion: no lost wakeup, no hang
}

// Many waiters, one notifier: notify() must release every parked thread
// (it is a broadcast, matching the coordinator's one-gate-many-lanes use).
TEST(EventcountTest, NotifyReleasesAllParkedWaiters) {
    sim::Eventcount gate;
    constexpr int kWaiters = 4;
    std::atomic<int> generation{0};
    std::atomic<int> observed{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
        waiters.emplace_back([&] {
            int seen = 0;
            while (true) {
                const auto ticket = gate.prepare();
                const int gen = generation.load(std::memory_order_acquire);
                if (done.load(std::memory_order_acquire)) break;
                if (gen == seen) {
                    gate.wait(ticket, nullptr, /*spin=*/16);
                    continue;
                }
                seen = gen;
                observed.fetch_add(1, std::memory_order_acq_rel);
            }
        });
    }

    constexpr int kRounds = 50;
    for (int round = 1; round <= kRounds; ++round) {
        generation.store(round, std::memory_order_release);
        gate.notify();
        // Every waiter must observe this generation before the next round;
        // spin-wait (bounded by the test timeout) rather than sleeping.
        while (observed.load(std::memory_order_acquire) < round * kWaiters) {
            sim::cpu_relax();
        }
    }
    done.store(true, std::memory_order_release);
    gate.notify();
    for (auto& t : waiters) t.join();
    EXPECT_EQ(observed.load(), kRounds * kWaiters);
}

} // namespace
} // namespace tedge
