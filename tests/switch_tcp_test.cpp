// OVS switch pipeline and TCP/HTTP model tests.
#include <gtest/gtest.h>

#include "net/ovs_switch.hpp"
#include "net/tcp.hpp"

namespace tedge::net {
namespace {

using sim::milliseconds;
using sim::microseconds;

struct SwitchFixture : ::testing::Test {
    void SetUp() override {
        client = topo.add_host("client", Ipv4{10, 0, 1, 1});
        server = topo.add_host("server", Ipv4{10, 0, 0, 2});
        cloud = topo.add_host("cloud", Ipv4{10, 255, 0, 1});
        sw = topo.add_switch("sw");
        topo.add_link(client, sw, microseconds(100), sim::gbit_per_sec(1));
        topo.add_link(server, sw, microseconds(100), sim::gbit_per_sec(10));
        topo.add_link(cloud, sw, milliseconds(20), sim::gbit_per_sec(10));
        ovs = std::make_unique<OvsSwitch>(simulation, topo, sw);
        net = std::make_unique<TcpNet>(simulation, topo, *ovs, endpoints);
    }

    Packet packet_to(Ipv4 dst, std::uint16_t port) {
        Packet p;
        p.ingress = client;
        p.src_ip = topo.node(client).ip;
        p.src_port = 40000;
        p.dst_ip = dst;
        p.dst_port = port;
        return p;
    }

    sim::Simulation simulation;
    Topology topo;
    EndpointDirectory endpoints;
    NodeId client, server, cloud, sw;
    std::unique_ptr<OvsSwitch> ovs;
    std::unique_ptr<TcpNet> net;
};

TEST_F(SwitchFixture, NoControllerForwardsToOriginalDestination) {
    Resolution result;
    bool done = false;
    ovs->submit(packet_to(topo.node(cloud).ip, 80), [&](const Resolution& r) {
        result = r;
        done = true;
    });
    simulation.run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.dropped);
    EXPECT_EQ(result.dest_node, cloud);
}

TEST_F(SwitchFixture, TableHitRewritesDestination) {
    FlowEntry entry;
    entry.match.dst_ip = Ipv4{203, 0, 113, 1};
    entry.match.dst_port = 80;
    entry.action.set_dst_ip = topo.node(server).ip;
    entry.action.set_dst_port = 8080;
    entry.action.forward_to = server;
    ovs->table().install(entry, simulation.now());

    Resolution result;
    ovs->submit(packet_to(Ipv4{203, 0, 113, 1}, 80),
                [&](const Resolution& r) { result = r; });
    simulation.run();
    EXPECT_EQ(result.dest_node, server);
    EXPECT_EQ(result.effective_dst.ip, topo.node(server).ip);
    EXPECT_EQ(result.effective_dst.port, 8080);
}

TEST_F(SwitchFixture, MissBuffersAndRaisesPacketIn) {
    std::vector<PacketIn> ins;
    ovs->set_controller([&](const PacketIn& in) { ins.push_back(in); });

    bool resolved = false;
    ovs->submit(packet_to(Ipv4{203, 0, 113, 1}, 80),
                [&](const Resolution&) { resolved = true; });
    simulation.run();
    ASSERT_EQ(ins.size(), 1u);
    EXPECT_FALSE(resolved); // held until the controller answers
    EXPECT_EQ(ovs->buffered_packets(), 1u);
    EXPECT_EQ(ovs->packet_in_count(), 1u);

    // Controller installs a redirect and releases the packet.
    FlowEntry entry;
    entry.match.dst_ip = Ipv4{203, 0, 113, 1};
    entry.action.set_dst_ip = topo.node(server).ip;
    entry.action.forward_to = server;
    ovs->flow_mod(FlowMod{entry});
    ovs->packet_out(PacketOut{ins[0].buffer_id, true, false});
    simulation.run();
    EXPECT_TRUE(resolved);
    EXPECT_EQ(ovs->buffered_packets(), 0u);
}

TEST_F(SwitchFixture, PacketOutDropDiscards) {
    PacketIn captured;
    ovs->set_controller([&](const PacketIn& in) { captured = in; });
    Resolution result;
    ovs->submit(packet_to(Ipv4{203, 0, 113, 1}, 80),
                [&](const Resolution& r) { result = r; });
    simulation.run();
    ovs->packet_out(PacketOut{captured.buffer_id, false, true});
    simulation.run();
    EXPECT_TRUE(result.dropped);
}

TEST_F(SwitchFixture, PacketOutWithoutTableForwardsOriginal) {
    PacketIn captured;
    ovs->set_controller([&](const PacketIn& in) { captured = in; });
    Resolution result;
    ovs->submit(packet_to(topo.node(cloud).ip, 80),
                [&](const Resolution& r) { result = r; });
    simulation.run();
    ovs->packet_out(PacketOut{captured.buffer_id, false, false});
    simulation.run();
    EXPECT_EQ(result.dest_node, cloud);
}

TEST_F(SwitchFixture, BufferOverflowDrops) {
    OvsSwitch::Config config;
    config.buffer_capacity = 1;
    OvsSwitch tiny(simulation, topo, sw, config);
    tiny.set_controller([](const PacketIn&) {});
    int dropped = 0;
    for (int i = 0; i < 3; ++i) {
        tiny.submit(packet_to(Ipv4{203, 0, 113, 1}, 80), [&](const Resolution& r) {
            if (r.dropped) ++dropped;
        });
    }
    simulation.run();
    EXPECT_EQ(dropped, 2);
}

// ------------------------------------------------------------------ TCP

TEST_F(SwitchFixture, HttpRequestToOpenEndpointSucceeds) {
    topo.open_port(server, 8080);
    endpoints.bind(server, 8080, [&](sim::Bytes, EndpointDirectory::ReplyFn reply) {
        simulation.schedule(microseconds(200), [reply] { reply(512); });
    });
    FlowEntry entry;
    entry.match.dst_ip = Ipv4{203, 0, 113, 1};
    entry.action.set_dst_ip = topo.node(server).ip;
    entry.action.set_dst_port = 8080;
    entry.action.forward_to = server;
    ovs->table().install(entry, simulation.now());

    HttpResult result;
    net->http_request(client, ServiceAddress{Ipv4{203, 0, 113, 1}, 80}, 100,
                      [&](const HttpResult& r) { result = r; });
    simulation.run();
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, server);
    EXPECT_EQ(result.served_by.port, 8080);
    // Path latency 200us one way: total must exceed 2 RTTs but stay tiny.
    EXPECT_GT(result.time_total, microseconds(600));
    EXPECT_LT(result.time_total, milliseconds(5));
    EXPECT_GT(result.time_total, result.connect_time);
}

TEST_F(SwitchFixture, ClosedPortGivesConnectionRefused) {
    FlowEntry entry;
    entry.match.dst_ip = Ipv4{203, 0, 113, 1};
    entry.action.set_dst_ip = topo.node(server).ip;
    entry.action.set_dst_port = 8080;
    entry.action.forward_to = server;
    ovs->table().install(entry, simulation.now());

    HttpResult result;
    net->http_request(client, ServiceAddress{Ipv4{203, 0, 113, 1}, 80}, 100,
                      [&](const HttpResult& r) { result = r; });
    simulation.run();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "connection refused");
    EXPECT_EQ(net->requests_failed(), 1u);
}

TEST_F(SwitchFixture, UnroutableDestinationFails) {
    HttpResult result;
    net->http_request(client, ServiceAddress{Ipv4{99, 99, 99, 99}, 80}, 100,
                      [&](const HttpResult& r) { result = r; });
    simulation.run();
    EXPECT_FALSE(result.ok);
}

TEST_F(SwitchFixture, ProbeReportsPortStateAfterOneRtt) {
    topo.open_port(server, 9000);
    bool open = false;
    sim::SimTime answered;
    net->probe(client, server, 9000, [&](bool o) {
        open = o;
        answered = simulation.now();
    });
    simulation.run();
    EXPECT_TRUE(open);
    EXPECT_EQ(answered, microseconds(400)); // 2 x 200us one-way

    bool closed_result = true;
    net->probe(client, server, 9001, [&](bool o) { closed_result = o; });
    simulation.run();
    EXPECT_FALSE(closed_result);
}

TEST_F(SwitchFixture, ProbeSeesPortStateAtSynArrival) {
    // Port opens 150us from now; SYN arrives at 200us -> open.
    simulation.schedule(microseconds(150), [&] { topo.open_port(server, 9100); });
    bool open = false;
    net->probe(client, server, 9100, [&](bool o) { open = o; });
    simulation.run();
    EXPECT_TRUE(open);
}

TEST(EndpointDirectory, BindFindUnbind) {
    EndpointDirectory directory;
    const NodeId node{3};
    EXPECT_EQ(directory.find(node, 80), nullptr);
    directory.bind(node, 80, [](sim::Bytes, EndpointDirectory::ReplyFn reply) {
        reply(1);
    });
    EXPECT_NE(directory.find(node, 80), nullptr);
    EXPECT_EQ(directory.find(node, 81), nullptr);
    EXPECT_EQ(directory.find(NodeId{4}, 80), nullptr);
    directory.unbind(node, 80);
    EXPECT_EQ(directory.find(node, 80), nullptr);
}

} // namespace
} // namespace tedge::net
