// End-to-end integration tests: the full transparent-access pipeline on the
// simulated C3 testbed -- packet-in, scheduling, on-demand deployment with
// and without waiting, flow memory, and scale-down of idle services.
#include <gtest/gtest.h>

#include "testbed/c3.hpp"
#include "workload/http_client.hpp"

namespace tedge {
namespace {

using testbed::C3Options;
using testbed::build_c3;
using testbed::service_by_key;

TEST(Integration, OnDemandWithWaitingDockerServesFirstRequest) {
    C3Options options;
    options.with_k8s = false;
    options.controller.scheduler = sdn::kProximityScheduler;
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    // Pre-pull so only Create + Scale Up + request remain (cached case).
    const auto& nginx = service_by_key("nginx");
    const auto* annotated = platform.service_registry().lookup(nginx.address);
    ASSERT_NE(annotated, nullptr);
    bool pulled = false;
    testbed->docker->ensure_image(annotated->spec,
                                  [&](bool ok, const container::PullTiming&) {
                                      pulled = ok;
                                  });
    platform.simulation().run_until(sim::seconds(60));
    ASSERT_TRUE(pulled);

    net::HttpResult result;
    bool done = false;
    platform.http_request(testbed->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              result = r;
                              done = true;
                          });
    platform.simulation().run_until(sim::seconds(120));

    ASSERT_TRUE(done);
    EXPECT_TRUE(result.ok) << result.error;
    // Served from the edge host, not the cloud.
    EXPECT_EQ(result.server_node, testbed->egs_docker);
    // The paper: first response (with cached image, Docker) < 1 second.
    EXPECT_LT(result.time_total.seconds(), 1.0);
    EXPECT_GT(result.time_total.seconds(), 0.1);

    // The deployment engine ran Create + ScaleUp but no Pull.
    const auto& records = platform.deployment_engine().records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_FALSE(records[0].phases.pulled);
    EXPECT_TRUE(records[0].phases.created);
    EXPECT_TRUE(records[0].phases.scaled);
    EXPECT_TRUE(records[0].ok);
}

TEST(Integration, SecondRequestHitsInstalledFlowAndIsFast) {
    C3Options options;
    options.with_k8s = false;
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();
    const auto& asm_svc = service_by_key("asm");

    sim::SimTime first_time;
    sim::SimTime second_time;
    int completed = 0;
    platform.http_request(testbed->clients[0], asm_svc.address, 120,
                          [&](const net::HttpResult& r) {
                              ASSERT_TRUE(r.ok) << r.error;
                              first_time = r.time_total;
                              ++completed;
                          });
    platform.simulation().run_until(sim::seconds(5));
    ASSERT_EQ(completed, 1);

    // Second request one second later -- well within the switch flow's idle
    // timeout, so it must not reach the controller at all.
    platform.simulation().schedule(sim::seconds(1), [&] {
        platform.http_request(testbed->clients[0], asm_svc.address, 120,
                              [&](const net::HttpResult& r) {
                                  ASSERT_TRUE(r.ok) << r.error;
                                  second_time = r.time_total;
                                  ++completed;
                              });
    });
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(30));
    ASSERT_EQ(completed, 2);

    // Second request: flow already installed in the switch, no controller
    // involvement, no deployment -- a few ms at most.
    EXPECT_LT(second_time.ms(), 10.0);
    EXPECT_LT(second_time.ns(), first_time.ns() / 10);
    // Only one packet-in reached the controller (the first request).
    EXPECT_EQ(platform.controller().dispatcher().stats().packet_ins, 1u);
}

TEST(Integration, WithoutWaitingRedirectsToFarEdgeWhileDeployingNear) {
    C3Options options;
    options.with_k8s = false;
    options.with_far_edge = true;
    options.controller.scheduler = sdn::kProximityScheduler;
    options.controller.scheduler_params["wait"] = yamlite::Node{false};
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();
    const auto& nginx = service_by_key("nginx");
    const auto* annotated = platform.service_registry().lookup(nginx.address);

    // Far edge already runs the service (warm); near edge is empty.
    bool warm = false;
    platform.deployment_engine().ensure(
        *testbed->far_edge, annotated->spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) { warm = ok; });
    platform.simulation().run_until(sim::seconds(120));
    ASSERT_TRUE(warm);
    platform.deployment_engine().clear_records();

    net::HttpResult first;
    bool done = false;
    platform.http_request(testbed->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              first = r;
                              done = true;
                          });
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(2));

    // The first request is answered by the far edge immediately...
    ASSERT_TRUE(done);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.server_node, testbed->far_edge_host);
    EXPECT_LT(first.time_total.ms(), 100.0);

    // ...while the optimal (near) edge deploys in the background.
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(120));
    EXPECT_FALSE(testbed->docker->ready_instances(annotated->spec.name).empty());

    // A later request (new flow dispatch) lands on the near edge.
    net::HttpResult later;
    done = false;
    platform.http_request(testbed->clients[1], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              later = r;
                              done = true;
                          });
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(30));
    ASSERT_TRUE(done);
    ASSERT_TRUE(later.ok) << later.error;
    EXPECT_EQ(later.server_node, testbed->egs_docker);
}

TEST(Integration, UnregisteredServiceGoesToCloudUntouched) {
    C3Options options;
    options.with_k8s = false;
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    // An address nobody registered, but the cloud answers it (alias).
    const net::ServiceAddress unknown{net::Ipv4{198, 51, 100, 99}, 80};
    platform.topology().add_ip_alias(platform.cloud_node(), unknown.ip);
    platform.topology().open_port(platform.cloud_node(), unknown.port);
    platform.endpoints().bind(platform.cloud_node(), unknown.port,
                              [&](sim::Bytes, net::EndpointDirectory::ReplyFn reply) {
                                  reply(256);
                              });

    net::HttpResult result;
    bool done = false;
    platform.http_request(testbed->clients[0], unknown, 120,
                          [&](const net::HttpResult& r) {
                              result = r;
                              done = true;
                          });
    platform.simulation().run_until(sim::seconds(30));
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, platform.cloud_node());
    EXPECT_EQ(platform.controller().dispatcher().stats().unregistered, 1u);
    // No deployment was triggered.
    EXPECT_TRUE(platform.deployment_engine().records().empty());
}

TEST(Integration, IdleServiceIsScaledDownAfterFlowMemoryExpiry) {
    C3Options options;
    options.with_k8s = false;
    options.controller.flow_memory.idle_timeout = sim::seconds(20);
    options.controller.flow_memory.scan_period = sim::seconds(2);
    options.controller.dispatcher.switch_idle_timeout = sim::seconds(5);
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();
    const auto& asm_svc = service_by_key("asm");
    const auto* annotated = platform.service_registry().lookup(asm_svc.address);

    bool done = false;
    platform.http_request(testbed->clients[0], asm_svc.address, 120,
                          [&](const net::HttpResult& r) {
                              ASSERT_TRUE(r.ok) << r.error;
                              done = true;
                          });
    platform.simulation().run_until(sim::seconds(5));
    ASSERT_TRUE(done);
    ASSERT_FALSE(testbed->docker->ready_instances(annotated->spec.name).empty());

    // No further traffic: the memorized flow expires and the controller
    // scales the idle service down.
    platform.simulation().run_until(sim::seconds(200));
    EXPECT_EQ(platform.controller().idle_scale_downs(), 1u);
    EXPECT_TRUE(testbed->docker->ready_instances(annotated->spec.name).empty());
}

TEST(Integration, K8sDeploymentServesRequestButSlowerThanDocker) {
    C3Options k8s_only;
    k8s_only.with_docker = false;
    auto k8s_testbed = build_c3(k8s_only);
    k8s_testbed->register_table1_services();

    const auto& nginx = service_by_key("nginx");

    // Docker-only total for the same cached scenario, for comparison.
    C3Options docker_only;
    docker_only.with_k8s = false;
    auto docker_testbed = build_c3(docker_only);
    docker_testbed->register_table1_services();

    auto run_first_request = [&](testbed::C3Testbed& tb) {
        auto& p = tb.platform;
        const auto* annotated = p.service_registry().lookup(nginx.address);
        bool pulled = false;
        p.clusters().front()->ensure_image(annotated->spec,
                                           [&](bool ok, const container::PullTiming&) {
                                               pulled = ok;
                                           });
        p.simulation().run_until(p.simulation().now() + sim::seconds(120));
        EXPECT_TRUE(pulled);
        net::HttpResult result;
        bool done = false;
        p.http_request(tb.clients[0], nginx.address, 120,
                       [&](const net::HttpResult& r) {
                           result = r;
                           done = true;
                       });
        p.simulation().run_until(p.simulation().now() + sim::seconds(120));
        EXPECT_TRUE(done);
        EXPECT_TRUE(result.ok) << result.error;
        return result.time_total;
    };

    const sim::SimTime docker_total = run_first_request(*docker_testbed);
    const sim::SimTime k8s_total = run_first_request(*k8s_testbed);

    // Paper fig. 12: Docker < 1 s, Kubernetes ~ 3 s.
    EXPECT_LT(docker_total.seconds(), 1.0);
    EXPECT_GT(k8s_total.seconds(), 1.5);
    EXPECT_LT(k8s_total.seconds(), 6.0);
    EXPECT_GT(k8s_total.ns(), docker_total.ns() * 2);
}

} // namespace
} // namespace tedge
