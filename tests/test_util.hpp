// Shared test helpers: a scriptable fake Cluster for scheduler and
// dispatcher unit tests.
#pragma once

#include <string>
#include <vector>

#include "orchestrator/cluster.hpp"

namespace tedge::testutil {

class FakeCluster final : public orchestrator::Cluster {
public:
    FakeCluster(std::string name, net::NodeId location)
        : name_(std::move(name)), location_(location) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] net::NodeId location() const override { return location_; }

    void ensure_image(const orchestrator::ServiceSpec&, PullCallback done) override {
        ++pulls;
        done(!fail_pull, {});
    }
    [[nodiscard]] bool has_image(const orchestrator::ServiceSpec&) const override {
        return image_cached;
    }
    void create_service(const orchestrator::ServiceSpec& spec,
                        BoolCallback done) override {
        ++creates;
        created_services.push_back(spec.name);
        done(!fail_create);
    }
    [[nodiscard]] bool has_service(const std::string& name) const override {
        for (const auto& s : created_services) {
            if (s == name) return true;
        }
        return false;
    }
    void scale_up(const std::string&, BoolCallback done) override {
        ++scale_ups;
        done(!fail_scale);
    }
    void scale_down(const std::string&, BoolCallback done) override {
        ++scale_downs;
        done(true);
    }
    void remove_service(const std::string&, BoolCallback done) override {
        ++removes;
        done(true);
    }
    void delete_image(const orchestrator::ServiceSpec&) override { ++deletes; }
    [[nodiscard]] std::vector<orchestrator::InstanceInfo>
    instances(const std::string& name) const override {
        std::vector<orchestrator::InstanceInfo> out;
        for (const auto& i : instance_list) {
            if (i.service == name) out.push_back(i);
        }
        return out;
    }
    [[nodiscard]] std::size_t total_instances() const override {
        return instance_list.size();
    }

    /// Convenience: add an instance of `service` at this cluster's location.
    void add_instance(const std::string& service, bool ready,
                      std::uint16_t port = 8080) {
        orchestrator::InstanceInfo info;
        info.service = service;
        info.node = location_;
        info.port = port;
        info.ready = ready;
        instance_list.push_back(info);
    }

    // Scriptable state.
    bool image_cached = false;
    bool fail_pull = false;
    bool fail_create = false;
    bool fail_scale = false;
    std::vector<orchestrator::InstanceInfo> instance_list;
    std::vector<std::string> created_services;
    int pulls = 0, creates = 0, scale_ups = 0, scale_downs = 0, removes = 0,
        deletes = 0;

private:
    std::string name_;
    net::NodeId location_;
};

} // namespace tedge::testutil
