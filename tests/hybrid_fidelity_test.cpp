// Hybrid-fidelity tests (DESIGN §9): the AggregateEpoch grid, FlowMemory's
// fluid cohorts (promote/demote, anonymous admission, epoch-boundary expiry,
// idle-notification parity), the FluidPoissonStream workload, and the
// end-to-end differential -- a platform run under hybrid fidelity must make
// the same dispatch decisions, at the same virtual instants, with the same
// idle scale-downs, as the exact run, on both event-queue backends.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/edge_platform.hpp"
#include "sdn/flow_memory.hpp"
#include "simcore/aggregate_epoch.hpp"
#include "simcore/random.hpp"
#include "workload/stream.hpp"

namespace tedge::sdn {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---------------------------------------------------------------- epoch grid

TEST(AggregateEpochTest, GridHooksRoundToPeriodMultiples) {
    sim::Simulation sim;
    sim::AggregateEpoch epoch(sim, milliseconds(100));
    EXPECT_EQ(epoch.period(), milliseconds(100));

    EXPECT_EQ(epoch.floor(sim::SimTime::zero()), sim::SimTime::zero());
    EXPECT_EQ(epoch.floor(milliseconds(99)), sim::SimTime::zero());
    EXPECT_EQ(epoch.floor(milliseconds(100)), milliseconds(100));
    EXPECT_EQ(epoch.floor(milliseconds(150)), milliseconds(100));

    EXPECT_EQ(epoch.ceil(sim::SimTime::zero()), sim::SimTime::zero());
    EXPECT_EQ(epoch.ceil(milliseconds(1)), milliseconds(100));
    EXPECT_EQ(epoch.ceil(milliseconds(100)), milliseconds(100));
    EXPECT_EQ(epoch.ceil(milliseconds(101)), milliseconds(200));

    // next_after is strict: a flow installed exactly on the grid refreshes
    // at the *next* boundary, not its own install instant.
    EXPECT_EQ(epoch.next_after(sim::SimTime::zero()), milliseconds(100));
    EXPECT_EQ(epoch.next_after(milliseconds(100)), milliseconds(200));
    EXPECT_EQ(epoch.next_after(milliseconds(150)), milliseconds(200));
}

TEST(AggregateEpochTest, TicksFireOnlyWhileRequested) {
    sim::Simulation sim;
    sim::AggregateEpoch epoch(sim, milliseconds(100));
    std::vector<sim::SimTime> ticks;
    epoch.subscribe([&](sim::SimTime tick) { ticks.push_back(tick); });

    // Nothing requested: an idle hybrid run schedules no kernel events.
    sim.run_until(seconds(1));
    EXPECT_EQ(epoch.ticks_fired(), 0u);
    EXPECT_FALSE(sim.has_pending_events());

    // Arm 350 ms ahead: ticks at the three grid instants in that window.
    epoch.request_ticks_until(sim.now() + milliseconds(350));
    EXPECT_EQ(epoch.horizon(), milliseconds(1300)); // floor(1s + 350ms)
    sim.run_until(seconds(2));
    EXPECT_EQ(epoch.ticks_fired(), 3u);
    ASSERT_EQ(ticks.size(), 3u);
    EXPECT_EQ(ticks[0], milliseconds(1100));
    EXPECT_EQ(ticks[1], milliseconds(1200));
    EXPECT_EQ(ticks[2], milliseconds(1300));
    EXPECT_FALSE(sim.has_pending_events()); // daemon re-arm stopped
}

TEST(AggregateEpochTest, UnsubscribeStopsDelivery) {
    sim::Simulation sim;
    sim::AggregateEpoch epoch(sim, milliseconds(10));
    int a = 0;
    int b = 0;
    const auto id = epoch.subscribe([&](sim::SimTime) { ++a; });
    epoch.subscribe([&](sim::SimTime) { ++b; });
    epoch.request_ticks_until(milliseconds(20));
    sim.run_until(milliseconds(30));
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 2);
    epoch.unsubscribe(id);
    epoch.request_ticks_until(milliseconds(50)); // two more grid instants
    sim.run_until(milliseconds(60));
    EXPECT_EQ(a, 2); // unsubscribed: no further deliveries
    EXPECT_EQ(b, 4);
}

// ------------------------------------------------------------- fluid cohorts

MemorizedFlow make_flow(const std::string& service, std::uint32_t client_octet,
                        const std::string& cluster = "edge") {
    MemorizedFlow flow;
    flow.client_ip = net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(client_octet)};
    flow.service_address = {net::Ipv4{203, 0, 113, 1}, 80};
    flow.service_name = service;
    flow.instance_node = net::NodeId{1};
    flow.instance_port = 8080;
    flow.cluster = cluster;
    return flow;
}

struct HybridMemoryFixture : ::testing::Test {
    HybridMemoryFixture()
        : memory(simulation, {.idle_timeout = seconds(60),
                              .scan_period = seconds(5),
                              .fidelity = Fidelity::kHybrid,
                              .epoch_period = milliseconds(100)}) {}

    sim::Simulation simulation;
    FlowMemory memory;
};

TEST_F(HybridMemoryFixture, EstablishedMemorizePromotesIntoCohort) {
    memory.memorize(make_flow("svc", 1), /*established=*/true);
    EXPECT_EQ(memory.size(), 1u);
    EXPECT_EQ(memory.fluid_flows(), 1u);
    EXPECT_EQ(memory.fluid_flows("svc", "edge"), 1u);
    // Fused counters: the Dispatcher-facing count does not care about
    // representation.
    EXPECT_EQ(memory.flows_for_service("svc"), 1u);
    EXPECT_EQ(memory.flows_for_service("svc", "edge"), 1u);
}

TEST_F(HybridMemoryFixture, PromoteDemoteAreIdempotentFlagFlips) {
    memory.memorize(make_flow("svc", 1)); // cold start: exact
    EXPECT_EQ(memory.fluid_flows(), 0u);
    const net::Ipv4 ip{10, 0, 1, 1};
    const net::ServiceAddress addr{net::Ipv4{203, 0, 113, 1}, 80};

    EXPECT_TRUE(memory.promote(ip, addr));
    EXPECT_FALSE(memory.promote(ip, addr)); // already fluid
    EXPECT_EQ(memory.fluid_flows(), 1u);
    EXPECT_TRUE(memory.demote(ip, addr));
    EXPECT_FALSE(memory.demote(ip, addr)); // already exact
    EXPECT_EQ(memory.fluid_flows(), 0u);
    EXPECT_FALSE(memory.promote(net::Ipv4{10, 0, 1, 99}, addr)); // unknown
    EXPECT_EQ(memory.size(), 1u); // representation changes never add/drop flows
}

TEST(HybridFidelityTest, ExactModeRejectsFluidOperations) {
    sim::Simulation simulation;
    FlowMemory memory(simulation,
                      {.idle_timeout = seconds(60), .scan_period = seconds(5)});
    memory.memorize(make_flow("svc", 1), /*established=*/true); // hint ignored
    EXPECT_EQ(memory.fluid_flows(), 0u);
    EXPECT_EQ(memory.epoch(), nullptr);
    EXPECT_FALSE(memory.promote(net::Ipv4{10, 0, 1, 1},
                                {net::Ipv4{203, 0, 113, 1}, 80}));
    EXPECT_THROW(memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 10),
                 std::logic_error);
}

TEST_F(HybridMemoryFixture, RecallDemotesFluidFlow) {
    // A fluid flow that re-appears is at a decision boundary again: recall()
    // must hand it back demoted, indistinguishable from an exact flow.
    memory.memorize(make_flow("svc", 1), /*established=*/true);
    ASSERT_EQ(memory.fluid_flows(), 1u);
    const auto recalled =
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80});
    ASSERT_TRUE(recalled);
    EXPECT_EQ(recalled->service_name, "svc");
    EXPECT_EQ(recalled->instance_port, 8080);
    EXPECT_EQ(memory.fluid_flows(), 0u); // demoted on the hit
    EXPECT_EQ(memory.size(), 1u);
    EXPECT_EQ(memory.hits(), 1u);
}

TEST_F(HybridMemoryFixture, FlowExpiringExactlyOnEpochBoundary) {
    // idle_timeout = 60 s is simultaneously an expiry-bucket boundary
    // (60 s / 5 s scan) and an epoch-grid instant (60 s / 100 ms): the flow
    // must expire at exactly 60 s -- the instant exact mode fires -- with one
    // idle notification, whether the flow is exact or fluid.
    std::vector<std::pair<std::string, sim::SimTime>> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string&) {
            idle.emplace_back(service, simulation.now());
        });
    memory.memorize(make_flow("svc", 1), /*established=*/true);
    ASSERT_EQ(memory.epoch()->floor(seconds(60)), seconds(60)); // on the grid

    simulation.run_until(seconds(59));
    EXPECT_EQ(memory.size(), 1u);
    EXPECT_TRUE(idle.empty());
    simulation.run_until(seconds(60));
    EXPECT_EQ(memory.size(), 0u);
    EXPECT_EQ(memory.fluid_flows(), 0u);
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0].first, "svc");
    EXPECT_EQ(idle[0].second, seconds(60));
}

TEST_F(HybridMemoryFixture, AnonymousAdmissionFusesIntoCounters) {
    memory.memorize(make_flow("svc", 1)); // one exact cold start
    memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 1000);
    EXPECT_EQ(memory.size(), 1001u);
    EXPECT_EQ(memory.fluid_flows(), 1000u);
    EXPECT_EQ(memory.fluid_flows("svc", "edge"), 1000u);
    EXPECT_EQ(memory.flows_for_service("svc"), 1001u);
    EXPECT_EQ(memory.flows_for_service("svc", "edge"), 1001u);

    // The whole population expires at its deadline; the cohort drains and
    // the service goes idle exactly once.
    std::vector<std::pair<std::string, sim::SimTime>> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string&) {
            idle.emplace_back(service, simulation.now());
        });
    simulation.run_until(seconds(120));
    EXPECT_EQ(memory.size(), 0u);
    EXPECT_EQ(memory.fluid_flows(), 0u);
    EXPECT_EQ(memory.flows_for_service("svc"), 0u);
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0].second, seconds(60));
}

TEST_F(HybridMemoryFixture, LastFlowInBucketIdleNotificationParity) {
    // The parity claim, head on: a cohort of 1 exact + 4 anonymous flows must
    // produce the identical (service, cluster, instant) idle sequence as five
    // individually memorized exact flows. Run the exact twin on its own
    // kernel and compare the recorded sequences.
    sim::Simulation exact_sim;
    FlowMemory exact(exact_sim,
                     {.idle_timeout = seconds(60), .scan_period = seconds(5)});

    using Notice = std::tuple<std::string, std::string, std::int64_t>;
    std::vector<Notice> hybrid_idle;
    std::vector<Notice> exact_idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string& cluster) {
            hybrid_idle.emplace_back(service, cluster, simulation.now().ns());
        });
    exact.set_idle_service_callback(
        [&](const std::string& service, const std::string& cluster) {
            exact_idle.emplace_back(service, cluster, exact_sim.now().ns());
        });

    // Same population, two representations. A second service on another
    // cluster stays live longer so ordering across cohorts is exercised too.
    memory.memorize(make_flow("svc", 1), /*established=*/false);
    memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 4);
    for (std::uint32_t i = 1; i <= 5; ++i) exact.memorize(make_flow("svc", i));

    simulation.run_until(seconds(20));
    exact_sim.run_until(seconds(20));
    memory.memorize(make_flow("other", 9, "k8s"), /*established=*/true);
    exact.memorize(make_flow("other", 9, "k8s"));

    simulation.run_until(seconds(200));
    exact_sim.run_until(seconds(200));
    ASSERT_EQ(hybrid_idle.size(), 2u);
    EXPECT_EQ(hybrid_idle, exact_idle);
    EXPECT_EQ(memory.size(), exact.size());
}

TEST_F(HybridMemoryFixture, ForgetServiceCancelsAnonymousCohortMembers) {
    memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 10);
    memory.memorize(make_flow("svc", 1), /*established=*/true);
    memory.memorize(make_flow("other", 2));
    EXPECT_EQ(memory.forget_service("svc"), 11u); // tracked + anonymous
    EXPECT_EQ(memory.size(), 1u);
    EXPECT_EQ(memory.fluid_flows(), 0u);
    EXPECT_EQ(memory.flows_for_service("svc"), 0u);

    // The stale filed drain must cancel silently: no idle notification for
    // "svc" when its (now empty) expiry run fires.
    std::vector<std::string> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string&) {
            idle.push_back(service);
        });
    simulation.run_until(seconds(120));
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0], "other");
}

TEST_F(HybridMemoryFixture, CohortRateAdvancesLazilyWithoutKernelEvents) {
    // Two epochs of 50 admissions each, then a long silence. The EWMA must
    // fold the completed epochs -- and the decay across the idle gap -- on
    // the next query, with zero epoch ticks ever fired.
    memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 50);
    simulation.run_until(milliseconds(100));
    memory.admit_fluid("svc", "edge", net::NodeId{1}, 8080, 50);
    simulation.run_until(milliseconds(250));

    const double rate = memory.fluid_rate_per_s("svc", "edge");
    // alpha = 0.25, both completed epochs carried 50 flows / 0.1 s = 500/s:
    // rate = 500 * (0.25 + 0.75 * 0.25) = 218.75.
    EXPECT_NEAR(rate, 218.75, 1e-9);

    simulation.run_until(seconds(10)); // ~97 arrival-free epochs
    EXPECT_LT(memory.fluid_rate_per_s("svc", "edge"), 1e-9);
    EXPECT_EQ(memory.epoch()->ticks_fired(), 0u); // all of it lazy
    EXPECT_EQ(memory.fluid_rate_per_s("nope", "edge"), 0.0);
}

// --------------------------------------------------------- fluid workload

TEST(RngPoissonTest, DeterministicAndUnbiased) {
    sim::Rng a(7);
    sim::Rng b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.poisson(4.2), b.poisson(4.2));

    // Sample means for both regimes (Knuth product below 32, normal
    // approximation above) land near the true mean.
    for (const double mean : {3.0, 250.0}) {
        sim::Rng rng(42);
        double sum = 0.0;
        const int n = 20'000;
        for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05) << "mean " << mean;
    }
    sim::Rng rng(1);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(FluidPoissonStreamTest, EmitsExactFlowTotalOnEpochGrid) {
    workload::FluidPoissonStream::Options options;
    options.services = 8;
    options.clients = 16;
    options.total_rate_per_s = 5000.0;
    options.limit = 20'000;
    options.seed = 42;
    options.epoch_period = milliseconds(100);
    workload::FluidPoissonStream stream(options);

    std::uint64_t flows = 0;
    std::size_t events = 0;
    std::vector<bool> cold_seen(options.services, false);
    sim::SimTime prev = sim::SimTime::zero();
    while (auto event = stream.next()) {
        ++events;
        flows += event->count;
        EXPECT_GE(event->at, prev); // nondecreasing merge
        prev = event->at;
        ASSERT_LT(event->service, options.services);
        ASSERT_LT(event->client, options.clients);
        if (!cold_seen[event->service]) {
            // The service's first arrival is the exact cold start.
            EXPECT_EQ(event->count, 1u) << "service " << event->service;
            cold_seen[event->service] = true;
        } else {
            // Warm arrivals are per-epoch batches on the grid.
            EXPECT_GT(event->count, 0u);
            EXPECT_EQ(event->at.ns() % options.epoch_period.ns(), 0);
        }
    }
    EXPECT_EQ(flows, options.limit); // clamped to the budget exactly
    EXPECT_EQ(stream.flows_emitted(), options.limit);
    // The point of the fluid stream: orders of magnitude fewer events.
    EXPECT_LT(events, options.limit / 10);
}

TEST(FluidPoissonStreamTest, DeterministicPerSeed) {
    workload::FluidPoissonStream::Options options;
    options.services = 4;
    options.total_rate_per_s = 2000.0;
    options.limit = 5'000;
    options.seed = 7;
    workload::FluidPoissonStream a(options);
    workload::FluidPoissonStream b(options);
    while (true) {
        const auto ea = a.next();
        const auto eb = b.next();
        ASSERT_EQ(ea.has_value(), eb.has_value());
        if (!ea) break;
        EXPECT_EQ(ea->at, eb->at);
        EXPECT_EQ(ea->service, eb->service);
        EXPECT_EQ(ea->client, eb->client);
        EXPECT_EQ(ea->count, eb->count);
    }
}

// ------------------------------------------------- end-to-end differential

/// Everything observable about a platform run that the hybrid fast path must
/// reproduce: per-request outcomes with their virtual completion instants,
/// the dispatcher decision counters, FlowMemory traffic, idle scale-downs,
/// and the final clock.
struct RunDigest {
    std::vector<std::tuple<bool, std::uint64_t, std::int64_t>> requests;
    std::uint64_t packet_ins = 0;
    std::uint64_t memory_hits = 0;
    std::uint64_t deployed_waiting = 0;
    std::uint64_t flow_memory_hits = 0;
    std::uint64_t flow_memory_misses = 0;
    std::uint64_t idle_scale_downs = 0;
    std::int64_t final_now_ns = 0;

    bool operator==(const RunDigest&) const = default;
};

/// The fig. 2 loop in miniature: cold start, switch-entry expiry, memory-hit
/// re-dispatch (the established path hybrid promotes), then idle scale-down.
RunDigest run_differential_scenario(sim::QueueBackend backend,
                                    Fidelity fidelity) {
    sim::Simulation sim(backend);
    core::EdgePlatform platform(sim, {});
    std::vector<net::NodeId> clients;
    for (std::uint32_t i = 1; i <= 3; ++i) {
        clients.push_back(platform.add_client(
            "client" + std::to_string(i),
            net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(i)}));
    }
    const auto edge =
        platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
    platform.add_cloud();

    auto& registry = platform.add_registry({.host = "docker.io"});
    container::Image image;
    image.ref = *container::ImageRef::parse("web:1");
    image.layers = container::make_layers("web", sim::mib(10), 2);
    registry.put(image);

    container::AppProfile app;
    app.name = "web";
    app.init_median = milliseconds(20);
    app.service_median = sim::microseconds(200);
    app.port = 80;
    platform.add_app_profile("web:1", app);
    platform.add_docker_cluster("edge", edge);

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 9}, 80};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");

    ControllerConfig config;
    config.fidelity = fidelity;
    config.dispatcher.switch_idle_timeout = seconds(1); // switch forgets fast
    config.flow_memory.idle_timeout = seconds(30);
    config.flow_memory.scan_period = seconds(5);
    platform.start_controller(edge, config);

    RunDigest digest;
    auto request_all = [&] {
        for (const auto client : clients) {
            platform.http_request(client, address, 100,
                                  [&, client](const net::HttpResult& r) {
                digest.requests.emplace_back(r.ok, r.server_node.value,
                                             sim.now().ns());
            });
        }
    };

    request_all();                    // cold starts: deploy-and-wait
    sim.run_until(seconds(10));       // switch entries idle out at 1 s
    platform.ingress().table().expire(sim.now());
    request_all();                    // memory hits: the established path
    sim.run_until(seconds(15));
    request_all();                    // still-live memory entries, touched
    sim.run_until(seconds(120));      // everything idles out; scale-down

    const auto& stats = platform.controller().dispatcher().stats();
    digest.packet_ins = stats.packet_ins;
    digest.memory_hits = stats.memory_hits;
    digest.deployed_waiting = stats.deployed_waiting;
    digest.flow_memory_hits = platform.controller().flow_memory().hits();
    digest.flow_memory_misses = platform.controller().flow_memory().misses();
    digest.idle_scale_downs = platform.controller().idle_scale_downs();
    digest.final_now_ns = sim.now().ns();
    return digest;
}

TEST(HybridDifferentialTest, HybridReproducesExactRunOnBothBackends) {
    const auto exact_heap =
        run_differential_scenario(sim::QueueBackend::kHeap, Fidelity::kExact);

    // The scenario exercised what it claims to: real deployments, real
    // memory hits, real idle scale-downs.
    ASSERT_EQ(exact_heap.requests.size(), 9u);
    for (const auto& [ok, server, at_ns] : exact_heap.requests) {
        EXPECT_TRUE(ok);
    }
    EXPECT_GT(exact_heap.deployed_waiting, 0u);
    EXPECT_GT(exact_heap.memory_hits, 0u);
    EXPECT_GT(exact_heap.idle_scale_downs, 0u);

    const auto hybrid_heap =
        run_differential_scenario(sim::QueueBackend::kHeap, Fidelity::kHybrid);
    EXPECT_EQ(hybrid_heap, exact_heap) << "hybrid diverged from exact (heap)";

    const auto exact_wheel =
        run_differential_scenario(sim::QueueBackend::kWheel, Fidelity::kExact);
    EXPECT_EQ(exact_wheel, exact_heap) << "wheel diverged from heap (exact)";

    const auto hybrid_wheel =
        run_differential_scenario(sim::QueueBackend::kWheel, Fidelity::kHybrid);
    EXPECT_EQ(hybrid_wheel, exact_heap) << "hybrid diverged from exact (wheel)";
}

} // namespace
} // namespace tedge::sdn
