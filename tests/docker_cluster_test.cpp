// DockerCluster tests: the full Pull / Create / Scale Up / Scale Down /
// Remove / Delete lifecycle on the single-host Docker "cluster".
#include <gtest/gtest.h>

#include "orchestrator/docker_cluster.hpp"

namespace tedge::orchestrator {
namespace {

using sim::milliseconds;
using sim::seconds;

struct DockerFixture : ::testing::Test {
    DockerFixture() {
        node = topo.add_host("egs", net::Ipv4{10, 0, 0, 2}, 12);
        registry = std::make_unique<container::Registry>(
            simulation, container::RegistryProfile{.host = "docker.io"});
        registries.add(*registry);
        cluster = std::make_unique<DockerCluster>(
            "docker", simulation, topo, node, endpoints, registries, sim::Rng{1});

        app.name = "web";
        app.init_median = milliseconds(20);
        app.service_median = milliseconds(1);
        app.port = 80;

        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(30), 3);
        registry->put(image);

        spec.name = "svc";
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 80;
        spec.target_port = 80;
        ContainerTemplate tmpl;
        tmpl.name = "web";
        tmpl.image = image.ref;
        tmpl.app = &app;
        tmpl.container_port = 80;
        spec.containers.push_back(tmpl);
    }

    void pull() {
        bool ok = false;
        cluster->ensure_image(spec, [&](bool success, const container::PullTiming&) {
            ok = success;
        });
        simulation.run();
        ASSERT_TRUE(ok);
    }

    void create() {
        bool ok = false;
        cluster->create_service(spec, [&](bool success) { ok = success; });
        simulation.run();
        ASSERT_TRUE(ok);
    }

    void scale_up() {
        bool ok = false;
        cluster->scale_up(spec.name, [&](bool success) { ok = success; });
        simulation.run();
        ASSERT_TRUE(ok);
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    RegistryDirectory registries;
    std::unique_ptr<container::Registry> registry;
    std::unique_ptr<DockerCluster> cluster;
    container::AppProfile app;
    container::Image image;
    ServiceSpec spec;
};

TEST_F(DockerFixture, PullMakesImageAvailable) {
    EXPECT_FALSE(cluster->has_image(spec));
    pull();
    EXPECT_TRUE(cluster->has_image(spec));
    // Second ensure is a cheap cache hit.
    const auto before = simulation.now();
    bool ok = false;
    container::PullTiming timing;
    cluster->ensure_image(spec, [&](bool success, const container::PullTiming& t) {
        ok = success;
        timing = t;
    });
    simulation.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(timing.layers_downloaded, 0u);
    EXPECT_LT(simulation.now() - before, milliseconds(50));
}

TEST_F(DockerFixture, CreateRequiresLocalImage) {
    bool ok = true;
    cluster->create_service(spec, [&](bool success) { ok = success; });
    simulation.run();
    EXPECT_FALSE(ok); // docker create fails without the image
    pull();
    create();
    EXPECT_TRUE(cluster->has_service("svc"));
}

TEST_F(DockerFixture, CreateIsIdempotent) {
    pull();
    create();
    bool ok = false;
    cluster->create_service(spec, [&](bool success) { ok = success; });
    simulation.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(cluster->runtime().list().size(), 1u); // still one container
}

TEST_F(DockerFixture, ScaleUpOpensPortAndListsReadyInstance) {
    pull();
    create();
    EXPECT_TRUE(cluster->instances("svc").empty()); // created != running
    scale_up();
    // The app opens its port shortly after start.
    simulation.run_until(simulation.now() + seconds(2));
    const auto instances = cluster->instances("svc");
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_TRUE(instances[0].ready);
    EXPECT_EQ(instances[0].node, node);
    EXPECT_EQ(instances[0].port, 80);
    EXPECT_TRUE(topo.port_open(node, 80));
    EXPECT_EQ(cluster->total_instances(), 1u);
}

TEST_F(DockerFixture, ScaleUpWhenRunningIsNoOp) {
    pull();
    create();
    scale_up();
    simulation.run_until(simulation.now() + seconds(2));
    scale_up(); // no-op, still one instance
    EXPECT_EQ(cluster->instances("svc").size(), 1u);
}

TEST_F(DockerFixture, ScaleUpUnknownServiceFails) {
    bool ok = true;
    cluster->scale_up("ghost", [&](bool success) { ok = success; });
    simulation.run();
    EXPECT_FALSE(ok);
}

TEST_F(DockerFixture, ScaleDownClosesPortAndAllowsRestart) {
    pull();
    create();
    scale_up();
    simulation.run_until(simulation.now() + seconds(2));

    bool down = false;
    cluster->scale_down(spec.name, [&](bool ok) { down = ok; });
    simulation.run();
    EXPECT_TRUE(down);
    EXPECT_FALSE(topo.port_open(node, 80));
    EXPECT_TRUE(cluster->instances("svc").empty());
    EXPECT_EQ(cluster->total_instances(), 0u);

    // Scale up again: containers restart (no re-create needed).
    scale_up();
    simulation.run_until(simulation.now() + seconds(2));
    EXPECT_TRUE(topo.port_open(node, 80));
}

TEST_F(DockerFixture, RemoveServiceCleansUpEverything) {
    pull();
    create();
    scale_up();
    simulation.run_until(simulation.now() + seconds(2));
    bool removed = false;
    cluster->remove_service(spec.name, [&](bool ok) { removed = ok; });
    simulation.run_until(simulation.now() + seconds(2));
    EXPECT_TRUE(removed);
    EXPECT_FALSE(cluster->has_service("svc"));
    EXPECT_FALSE(topo.port_open(node, 80));
    EXPECT_TRUE(cluster->runtime().list().empty());
    // The image stays cached until Delete.
    EXPECT_TRUE(cluster->has_image(spec));
    cluster->delete_image(spec);
    EXPECT_FALSE(cluster->has_image(spec));
    EXPECT_EQ(cluster->image_store().disk_usage(), 0);
}

TEST_F(DockerFixture, ManyServicesGetDistinctHostPorts) {
    pull();
    std::vector<ServiceSpec> specs;
    for (int i = 0; i < 10; ++i) {
        ServiceSpec s = spec;
        s.name = "svc" + std::to_string(i);
        specs.push_back(s);
    }
    for (auto& s : specs) {
        cluster->create_service(s, [](bool ok) { ASSERT_TRUE(ok); });
    }
    simulation.run();
    for (auto& s : specs) {
        cluster->scale_up(s.name, [](bool ok) { ASSERT_TRUE(ok); });
    }
    simulation.run_until(simulation.now() + seconds(5));

    std::set<std::uint16_t> ports;
    for (const auto& s : specs) {
        const auto instances = cluster->instances(s.name);
        ASSERT_EQ(instances.size(), 1u) << s.name;
        EXPECT_TRUE(instances[0].ready) << s.name;
        EXPECT_TRUE(ports.insert(instances[0].port).second)
            << "duplicate port " << instances[0].port;
    }
    EXPECT_EQ(ports.size(), 10u);
    EXPECT_TRUE(ports.contains(80)); // first one got the preferred port
}

TEST_F(DockerFixture, MultiContainerServiceStartsAllContainers) {
    container::AppProfile sidecar_app;
    sidecar_app.name = "sidecar";
    sidecar_app.init_median = milliseconds(100);
    sidecar_app.port = 0;

    container::Image sidecar_image;
    sidecar_image.ref = *container::ImageRef::parse("sidecar:1");
    sidecar_image.layers = container::make_layers("sidecar", sim::mib(5), 1);
    registry->put(sidecar_image);

    ContainerTemplate sidecar;
    sidecar.name = "writer";
    sidecar.image = sidecar_image.ref;
    sidecar.app = &sidecar_app;
    spec.containers.push_back(sidecar);

    pull();
    create();
    EXPECT_EQ(cluster->runtime().list().size(), 2u);
    scale_up();
    simulation.run_until(simulation.now() + seconds(2));
    const auto instances = cluster->instances("svc");
    ASSERT_EQ(instances.size(), 1u); // one service instance, two containers
    EXPECT_TRUE(instances[0].ready);
    for (const auto id : cluster->runtime().list()) {
        EXPECT_EQ(cluster->runtime().info(id).state,
                  container::ContainerState::kRunning);
    }
}

} // namespace
} // namespace tedge::orchestrator
