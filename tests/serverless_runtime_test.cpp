// Property-style sweeps over the WASM runtime: cold-start scaling, warm-hit
// ratios under different arrival patterns, and instance-cap behaviour.
#include <gtest/gtest.h>

#include "serverless/wasm_runtime.hpp"

namespace tedge::serverless {
namespace {

using sim::milliseconds;
using sim::seconds;

struct RuntimeSweepFixture : ::testing::Test {
    RuntimeSweepFixture() {
        node = topo.add_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        runtime = std::make_unique<WasmRuntime>(simulation, topo, node, endpoints,
                                                sim::Rng{3});
        app.name = "fn";
        app.service_median = milliseconds(2);
        app.service_sigma = 0.1;
        app.response_size = 128;
        app.port = 8080;
    }

    FunctionSpec function(const std::string& name, int max_instances = 64) {
        FunctionSpec fn;
        fn.name = name;
        fn.module = *container::ImageRef::parse(name + ":1");
        fn.app = &app;
        fn.max_instances = max_instances;
        return fn;
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    container::AppProfile app;
    std::unique_ptr<WasmRuntime> runtime;
};

class BurstSweep : public RuntimeSweepFixture,
                   public ::testing::WithParamInterface<int> {};

TEST_P(BurstSweep, ColdStartsBoundedByBurstWidth) {
    const int burst = GetParam();
    bool deployed = false;
    runtime->deploy(function("fn"), 9000, [&] { deployed = true; });
    simulation.run();
    ASSERT_TRUE(deployed);

    const auto* handler = endpoints.find(node, 9000);
    int completed = 0;
    for (int i = 0; i < burst; ++i) {
        (*handler)(64, [&](sim::Bytes) { ++completed; });
    }
    simulation.run();
    EXPECT_EQ(completed, burst);
    // Every concurrent request in the burst needed its own instance (no
    // warm pool yet), so cold starts == burst width...
    EXPECT_EQ(runtime->cold_starts(), static_cast<std::uint64_t>(burst));
    // ...and all instances are warm afterwards.
    EXPECT_EQ(runtime->warm_instances("fn"), burst);

    // A second identical burst is served entirely warm.
    for (int i = 0; i < burst; ++i) {
        (*handler)(64, [&](sim::Bytes) { ++completed; });
    }
    simulation.run();
    EXPECT_EQ(completed, 2 * burst);
    EXPECT_EQ(runtime->cold_starts(), static_cast<std::uint64_t>(burst));
    EXPECT_EQ(runtime->invocations(), static_cast<std::uint64_t>(2 * burst));
}

INSTANTIATE_TEST_SUITE_P(Widths, BurstSweep, ::testing::Values(1, 2, 4, 8, 16));

TEST_F(RuntimeSweepFixture, SequentialRequestsUseOneInstance) {
    runtime->deploy(function("fn"), 9000, [] {});
    simulation.run();
    const auto* handler = endpoints.find(node, 9000);
    for (int i = 0; i < 10; ++i) {
        bool done = false;
        (*handler)(64, [&](sim::Bytes) { done = true; });
        simulation.run();
        ASSERT_TRUE(done);
    }
    EXPECT_EQ(runtime->cold_starts(), 1u);
    EXPECT_EQ(runtime->warm_instances("fn"), 1);
}

TEST_F(RuntimeSweepFixture, CapSerializesExcessLoad) {
    runtime->deploy(function("fn", /*max_instances=*/2), 9000, [] {});
    simulation.run();
    const auto* handler = endpoints.find(node, 9000);
    std::vector<sim::SimTime> completions;
    for (int i = 0; i < 6; ++i) {
        (*handler)(64, [&](sim::Bytes) { completions.push_back(simulation.now()); });
    }
    simulation.run();
    ASSERT_EQ(completions.size(), 6u);
    // With 2 instances and ~2 ms service time, 6 requests take ~3 waves.
    EXPECT_GT(completions.back() - completions.front(), milliseconds(3));
    EXPECT_LE(runtime->cold_starts(), 2u);
}

TEST_F(RuntimeSweepFixture, TwoFunctionsAreIsolated) {
    runtime->deploy(function("a"), 9000, [] {});
    runtime->deploy(function("b"), 9001, [] {});
    simulation.run();
    const auto* ha = endpoints.find(node, 9000);
    const auto* hb = endpoints.find(node, 9001);
    int done = 0;
    (*ha)(64, [&](sim::Bytes) { ++done; });
    (*hb)(64, [&](sim::Bytes) { ++done; });
    simulation.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(runtime->warm_instances("a"), 1);
    EXPECT_EQ(runtime->warm_instances("b"), 1);
    runtime->remove("a", [] {});
    simulation.run();
    EXPECT_FALSE(runtime->deployed("a"));
    EXPECT_TRUE(runtime->deployed("b"));
    EXPECT_EQ(endpoints.find(node, 9000), nullptr);
    EXPECT_NE(endpoints.find(node, 9001), nullptr);
}

TEST_F(RuntimeSweepFixture, RedeploySameModuleSkipsLoad) {
    bool first = false;
    const sim::SimTime t0 = simulation.now();
    runtime->deploy(function("fn"), 9000, [&] { first = true; });
    simulation.run();
    ASSERT_TRUE(first);
    const sim::SimTime first_duration = simulation.now() - t0;

    // Redeploy (e.g. config change): module already compiled.
    const sim::SimTime t1 = simulation.now();
    bool second = false;
    runtime->deploy(function("fn"), 9000, [&] { second = true; });
    simulation.run();
    ASSERT_TRUE(second);
    EXPECT_LT(simulation.now() - t1, first_duration);
}

} // namespace
} // namespace tedge::serverless
