// Regression tests for the fast-path kernel rework: slab event queue
// determinism, generation-checked handles across slot reuse, the flow-table
// exact-match index vs. the reference scan, and the predicate-driven drain
// API.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "net/flow_table.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace tedge;
using sim::EventQueue;
using sim::SimTime;
using sim::Simulation;

// ---------------------------------------------------------------------------
// Determinism: the same schedule must execute in the same order and report
// the same total_scheduled(), run after run -- slot reuse, cancellations and
// daemon events included.

struct ScheduleRun {
    std::vector<int> order;
    std::uint64_t total_scheduled = 0;
    std::uint64_t executed = 0;
    SimTime end_time;
};

ScheduleRun run_reference_schedule() {
    ScheduleRun run;
    Simulation simulation;
    sim::Rng rng(42);
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 500; ++i) {
        // Coarse timestamps on purpose: plenty of same-instant events so the
        // FIFO tie-break is exercised, not just timestamp ordering.
        const auto at = sim::milliseconds(rng.uniform_int(0, 50));
        handles.push_back(simulation.schedule_at(
            at, [&run, i, &simulation, &rng] {
                run.order.push_back(i);
                if (i % 7 == 0) {
                    simulation.schedule(
                        sim::milliseconds(rng.uniform_int(1, 10)),
                        [&run, i] { run.order.push_back(1000 + i); });
                }
            },
            /*daemon=*/i % 11 == 0));
    }
    // Deterministic cancellations, some of events that already fired.
    for (int i = 0; i < 500; i += 13) handles[static_cast<std::size_t>(i)].cancel();
    simulation.run();
    run.total_scheduled = simulation.total_scheduled();
    run.executed = simulation.events_executed();
    run.end_time = simulation.now();
    return run;
}

TEST(KernelFastPath, IdenticalSchedulesExecuteIdentically) {
    const ScheduleRun a = run_reference_schedule();
    const ScheduleRun b = run_reference_schedule();
    EXPECT_EQ(a.order, b.order);
    EXPECT_EQ(a.total_scheduled, b.total_scheduled);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_FALSE(a.order.empty());
}

TEST(KernelFastPath, SameInstantEventsRunInScheduleOrderAcrossSlotReuse) {
    EventQueue queue;
    // Fill and drain so later pushes recycle slots in free-list (LIFO) order,
    // scrambling the slot-id <-> schedule-order correspondence.
    for (int i = 0; i < 8; ++i) queue.push(sim::seconds(1), [] {});
    while (!queue.empty()) queue.pop();

    std::vector<int> fired;
    for (int i = 0; i < 8; ++i) {
        queue.push(sim::seconds(2), [&fired, i] { fired.push_back(i); });
    }
    while (!queue.empty()) queue.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// ---------------------------------------------------------------------------
// Generation safety: a handle kept after its event fired must not be able to
// cancel (or observe) the slot's next tenant.

TEST(KernelFastPath, StaleHandleCannotCancelReusedSlot) {
    EventQueue queue;
    bool first_fired = false;
    auto stale = queue.push(sim::seconds(1), [&first_fired] { first_fired = true; });
    queue.pop().second();
    EXPECT_TRUE(first_fired);
    EXPECT_FALSE(stale.pending());

    // The freed slot is recycled by the next push.
    bool second_fired = false;
    auto fresh = queue.push(sim::seconds(2), [&second_fired] { second_fired = true; });
    stale.cancel(); // must be a no-op: the generation no longer matches
    EXPECT_FALSE(stale.pending());
    EXPECT_TRUE(fresh.pending());
    ASSERT_FALSE(queue.empty());
    queue.pop().second();
    EXPECT_TRUE(second_fired);
}

TEST(KernelFastPath, StaleHandleAfterCancellationCannotCancelReusedSlot) {
    EventQueue queue;
    auto stale = queue.push(sim::seconds(1), [] { FAIL() << "cancelled event fired"; });
    stale.cancel();
    EXPECT_TRUE(queue.empty());

    // Cancelled tombstones surface lazily; pushing now may reuse the slot
    // only after the tombstone is collected, so drain first via next_time().
    bool fired = false;
    queue.push(sim::seconds(2), [&fired] { fired = true; });
    stale.cancel(); // no-op either way
    while (!queue.empty()) queue.pop().second();
    EXPECT_TRUE(fired);
}

// ---------------------------------------------------------------------------
// Flow table: the exact-match index + wildcard fallback must return exactly
// what the reference full scan (peek) returns, on tables mixing priorities,
// specificities and timeouts.

net::Packet random_packet(sim::Rng& rng) {
    net::Packet p;
    p.src_ip = net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
    p.dst_ip = net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
    p.dst_port = static_cast<std::uint16_t>(80 + rng.uniform_int(0, 3));
    p.proto = rng.uniform_int(0, 1) == 0 ? net::Proto::kTcp : net::Proto::kUdp;
    return p;
}

TEST(KernelFastPath, IndexedLookupMatchesReferenceScanOnMixedTable) {
    net::FlowTable table;
    sim::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        net::FlowEntry e;
        // Randomly wildcard each field so the table mixes fully-specified
        // entries (indexed) with partial matches (fallback scan).
        if (rng.uniform_int(0, 3) != 0) {
            e.match.src_ip =
                net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
        }
        if (rng.uniform_int(0, 3) != 0) {
            e.match.dst_ip =
                net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
        }
        if (rng.uniform_int(0, 3) != 0) {
            e.match.dst_port = static_cast<std::uint16_t>(80 + rng.uniform_int(0, 3));
        }
        if (rng.uniform_int(0, 3) != 0) {
            e.match.proto =
                rng.uniform_int(0, 1) == 0 ? net::Proto::kTcp : net::Proto::kUdp;
        }
        e.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 5) * 100);
        e.cookie = static_cast<std::uint64_t>(i + 1);
        table.install(e, sim::SimTime::zero());
    }

    int hits = 0;
    for (int i = 0; i < 2000; ++i) {
        const net::Packet packet = random_packet(rng);
        const auto now = sim::milliseconds(i);
        // peek() is the reference full scan. Copy its result before lookup():
        // lookup() may sweep expired entries and invalidate the pointer.
        const net::FlowEntry* ref = table.peek(packet, now);
        const std::optional<net::FlowEntry> expected =
            ref ? std::optional<net::FlowEntry>(*ref) : std::nullopt;
        const auto got = table.lookup(packet, now);
        if (!expected) {
            EXPECT_FALSE(got.has_value()) << "scan missed but index hit, i=" << i;
        } else {
            ASSERT_TRUE(got.has_value()) << "index missed but scan hit, i=" << i;
            EXPECT_EQ(got->cookie, expected->cookie) << "winner differs, i=" << i;
            EXPECT_EQ(got->priority, expected->priority);
            ++hits;
        }
    }
    EXPECT_GT(hits, 0) << "test table never matched -- not exercising the index";
}

TEST(KernelFastPath, IndexedLookupMatchesScanAcrossExpiryAndRemoval) {
    net::FlowTable table;
    sim::Rng rng(9);
    std::vector<std::pair<net::FlowEntry, bool>> removed_log;
    table.set_removed_callback([&removed_log](const net::FlowEntry& e, bool idle) {
        removed_log.emplace_back(e, idle);
    });
    for (int i = 0; i < 64; ++i) {
        net::FlowEntry e;
        e.match.src_ip =
            net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
        e.match.dst_ip =
            net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(rng.uniform_int(0, 7))};
        e.match.dst_port = static_cast<std::uint16_t>(80 + rng.uniform_int(0, 3));
        e.match.proto = net::Proto::kTcp;
        if (rng.uniform_int(0, 1) == 0) e.idle_timeout = sim::seconds(rng.uniform_int(1, 5));
        if (rng.uniform_int(0, 2) == 0) e.hard_timeout = sim::seconds(rng.uniform_int(3, 8));
        e.cookie = static_cast<std::uint64_t>(i + 1);
        table.install(e, sim::SimTime::zero());
    }

    for (int i = 0; i < 400; ++i) {
        const net::Packet packet = random_packet(rng);
        const auto now = sim::milliseconds(i * 25); // crosses several timeouts
        const net::FlowEntry* ref = table.peek(packet, now);
        const std::optional<net::FlowEntry> expected =
            ref ? std::optional<net::FlowEntry>(*ref) : std::nullopt;
        const auto got = table.lookup(packet, now);
        if (!expected) {
            EXPECT_FALSE(got.has_value()) << "i=" << i;
        } else {
            ASSERT_TRUE(got.has_value()) << "i=" << i;
            EXPECT_EQ(got->cookie, expected->cookie) << "i=" << i;
        }
        if (i == 200) {
            // Structural removal mid-stream: the index must be rebuilt.
            table.remove_by_cookie(5);
            table.remove_by_cookie(17);
        }
    }
    // Timeouts were assigned, so the amortized sweeps must actually fire.
    EXPECT_FALSE(removed_log.empty());
}

// ---------------------------------------------------------------------------
// Predicate-driven drain API.

TEST(KernelFastPath, RunWhileStopsWhenPredicateTurnsFalse) {
    Simulation simulation;
    int fired = 0;
    for (int i = 1; i <= 10; ++i) {
        simulation.schedule(sim::seconds(i), [&fired] { ++fired; });
    }
    const auto executed = simulation.run_while([&fired] { return fired < 4; });
    EXPECT_EQ(executed, 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(simulation.now(), sim::seconds(4));
    EXPECT_TRUE(simulation.has_user_events());
}

TEST(KernelFastPath, RunUntilIdleOrReturnsEarlyWithoutAdvancingClock) {
    Simulation simulation;
    bool daemon_ran = false;
    simulation.schedule(sim::seconds(1), [] {});
    simulation.schedule(sim::seconds(100), [&daemon_ran] { daemon_ran = true; },
                        /*daemon=*/true);
    simulation.run_until_idle_or(sim::seconds(500));
    // User events drained at t=1; the clock must not jump to the deadline
    // and the far-future daemon tick must not have run.
    EXPECT_EQ(simulation.now(), sim::seconds(1));
    EXPECT_FALSE(daemon_ran);
}

TEST(KernelFastPath, DaemonEventsDoNotKeepRunAlive) {
    Simulation simulation;
    int daemon_ticks = 0;
    simulation.schedule_periodic(sim::seconds(1),
                                 [&daemon_ticks] { ++daemon_ticks; },
                                 /*daemon=*/true);
    simulation.schedule(sim::milliseconds(3500), [] {});
    simulation.run();
    // Daemon periodics fire while the user event is pending, then run()
    // returns instead of ticking forever.
    EXPECT_EQ(simulation.now(), sim::milliseconds(3500));
    EXPECT_EQ(daemon_ticks, 3);
}

} // namespace
