// Dispatcher and Controller unit tests on a small real platform: packet-in
// handling paths, FlowMemory fast path, cookie-based flow invalidation, and
// cloud flows.
#include <gtest/gtest.h>

#include "core/edge_platform.hpp"

namespace tedge::sdn {
namespace {

using sim::milliseconds;
using sim::seconds;

struct DispatcherFixture : ::testing::Test {
    DispatcherFixture() {
        client = platform.add_client("client", net::Ipv4{10, 0, 1, 1});
        edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        platform.add_cloud();

        auto& registry = platform.add_registry({.host = "docker.io"});
        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(10), 2);
        registry.put(image);

        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(20);
        app.service_median = sim::microseconds(200);
        app.port = 80;
        platform.add_app_profile("web:1", app);

        platform.add_docker_cluster("edge", edge);
        address = {net::Ipv4{203, 0, 113, 9}, 80};
        platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
    }

    void start(ControllerConfig config = {}) {
        platform.start_controller(edge, std::move(config));
    }

    net::HttpResult request_and_wait(net::NodeId from,
                                     const net::ServiceAddress& to) {
        net::HttpResult result;
        bool done = false;
        platform.http_request(from, to, 100, [&](const net::HttpResult& r) {
            result = r;
            done = true;
        });
        while (!done) {
            platform.simulation().run_until(platform.simulation().now() + seconds(1));
        }
        return result;
    }

    core::EdgePlatform platform;
    net::NodeId client, edge;
    net::ServiceAddress address;
};

TEST_F(DispatcherFixture, FirstRequestDeploysAndInstallsFlow) {
    start();
    const auto result = request_and_wait(client, address);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, edge);
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins, 1u);
    EXPECT_EQ(stats.deployed_waiting, 1u);
    EXPECT_EQ(platform.controller().flow_memory().size(), 1u);
    EXPECT_EQ(platform.ingress().table().size(), 1u);
}

TEST_F(DispatcherFixture, ClientLocationIsTracked) {
    start();
    request_and_wait(client, address);
    // Location = the ingress switch the client's packets entered through.
    const auto location =
        platform.controller().dispatcher().client_location(net::Ipv4{10, 0, 1, 1});
    ASSERT_TRUE(location);
    EXPECT_EQ(*location, platform.ingress_node());
    EXPECT_FALSE(platform.controller().dispatcher().client_location(
        net::Ipv4{10, 0, 1, 99}));
}

TEST_F(DispatcherFixture, FlowMemoryFastPathSkipsScheduling) {
    ControllerConfig config;
    config.dispatcher.switch_idle_timeout = seconds(1); // switch forgets fast
    config.flow_memory.idle_timeout = seconds(300);     // memory keeps it
    config.scale_down_idle = false;
    start(config);

    request_and_wait(client, address);
    // Let the *switch* entry expire while the memorized flow stays valid.
    platform.simulation().run_until(platform.simulation().now() + seconds(5));
    EXPECT_EQ(platform.ingress().table().expire(platform.simulation().now()), 1u);

    const auto result = request_and_wait(client, address);
    EXPECT_TRUE(result.ok);
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins, 2u);
    EXPECT_EQ(stats.memory_hits, 1u);       // answered from FlowMemory
    EXPECT_EQ(stats.deployed_waiting, 1u);  // no second deployment
    // The memory-hit answer is quick: no scheduling, no deployment.
    EXPECT_LT(result.time_total, milliseconds(10));
}

TEST_F(DispatcherFixture, StaleMemoryFallsBackToFullDispatch) {
    ControllerConfig config;
    config.flow_memory.idle_timeout = seconds(300);
    config.scale_down_idle = false;
    start(config);
    request_and_wait(client, address);

    // Kill the instance behind FlowMemory's back.
    bool down = false;
    platform.cluster("edge")->scale_down(
        platform.service_registry().lookup(address)->spec.name,
        [&](bool ok) { down = ok; });
    platform.simulation().run_until(platform.simulation().now() + seconds(2));
    ASSERT_TRUE(down);
    // Also clear the stale switch entry (as its idle timeout would).
    platform.ingress().table().clear();

    const auto result = request_and_wait(client, address);
    EXPECT_TRUE(result.ok) << result.error; // redeployed on demand
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.memory_hits, 0u); // stale entry was not trusted
    EXPECT_EQ(stats.deployed_waiting, 2u);
}

TEST_F(DispatcherFixture, UnregisteredAddressInstallsNoFlow) {
    start();
    const net::ServiceAddress unknown{net::Ipv4{198, 51, 100, 50}, 80};
    platform.topology().add_ip_alias(platform.cloud_node(), unknown.ip);
    platform.topology().open_port(platform.cloud_node(), unknown.port);
    platform.endpoints().bind(platform.cloud_node(), unknown.port,
                              [](sim::Bytes, net::EndpointDirectory::ReplyFn reply) {
                                  reply(128);
                              });
    const auto result = request_and_wait(client, unknown);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.server_node, platform.cloud_node());
    EXPECT_EQ(platform.controller().dispatcher().stats().unregistered, 1u);
    EXPECT_EQ(platform.ingress().table().size(), 0u);
    EXPECT_EQ(platform.controller().flow_memory().size(), 0u);
}

TEST_F(DispatcherFixture, CloudOnlySchedulerInstallsCloudFlow) {
    ControllerConfig config;
    config.scheduler = kCloudOnlyScheduler;
    start(config);
    const auto result = request_and_wait(client, address);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, platform.cloud_node());
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.cloud_fallbacks, 1u);
    EXPECT_EQ(stats.deployed_waiting, 0u);
    // A redirect-to-cloud flow keeps follow-ups off the controller.
    EXPECT_EQ(platform.ingress().table().size(), 1u);
    request_and_wait(client, address);
    EXPECT_EQ(platform.controller().dispatcher().stats().packet_ins, 1u);
}

TEST_F(DispatcherFixture, OnBestReadyEvictsFlowsByCookie) {
    start();
    request_and_wait(client, address);
    ASSERT_EQ(platform.ingress().table().size(), 1u);
    const auto* annotated = platform.service_registry().lookup(address);
    platform.controller().dispatcher().on_best_ready(annotated->spec);
    platform.simulation().run_until(platform.simulation().now() + seconds(1));
    EXPECT_EQ(platform.ingress().table().size(), 0u);
    EXPECT_EQ(platform.controller().flow_memory().size(), 0u);
}

TEST_F(DispatcherFixture, ConcurrentFirstRequestsShareOneDeployment) {
    start();
    int done = 0;
    for (int i = 0; i < 6; ++i) {
        platform.http_request(client, address, 100, [&](const net::HttpResult& r) {
            EXPECT_TRUE(r.ok) << r.error;
            ++done;
        });
    }
    platform.simulation().run_until(seconds(60));
    EXPECT_EQ(done, 6);
    EXPECT_EQ(platform.deployment_engine().records().size(), 1u);
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins, 6u);
}

// ------------------------------------------------- two-cluster regressions

struct TwoClusterFixture : ::testing::Test {
    TwoClusterFixture() {
        client = platform.add_client("client", net::Ipv4{10, 0, 1, 1});
        edge_a = platform.add_edge_host("edge-a", net::Ipv4{10, 0, 0, 2}, 12);
        edge_b = platform.add_edge_host("edge-b", net::Ipv4{10, 0, 0, 3}, 12);
        platform.add_cloud();

        auto& registry = platform.add_registry({.host = "docker.io"});
        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(10), 2);
        registry.put(image);

        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(20);
        app.service_median = sim::microseconds(200);
        app.port = 80;
        platform.add_app_profile("web:1", app);
    }

    net::ServiceAddress register_web(std::uint8_t last_octet,
                                     const std::string& resources = "") {
        const net::ServiceAddress address{net::Ipv4{203, 0, 113, last_octet}, 80};
        platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)" + resources);
        return address;
    }

    net::HttpResult request_and_wait(const net::ServiceAddress& to) {
        net::HttpResult result;
        bool done = false;
        platform.http_request(client, to, 100, [&](const net::HttpResult& r) {
            result = r;
            done = true;
        });
        while (!done) {
            platform.simulation().run_until(platform.simulation().now() +
                                            seconds(1));
        }
        return result;
    }

    core::EdgePlatform platform;
    net::NodeId client, edge_a, edge_b;
};

TEST_F(TwoClusterFixture, DeploymentRejectionRetriesSiblingClusterBeforeCloud) {
    // edge-a (scheduled first) cannot fit the 500m request; its admission
    // rejection must not strand the client on the cloud while edge-b can
    // serve. Regression: the dispatcher used to release to the cloud on the
    // first deployment failure.
    orchestrator::DockerClusterConfig tiny;
    tiny.capacity = {.cpu_millicores = 100, .memory_bytes = 0};
    platform.add_docker_cluster("edge-a", edge_a, tiny);
    platform.add_docker_cluster("edge-b", edge_b);
    const auto address = register_web(40, R"(          resources:
            requests:
              cpu: 500m
)");
    platform.start_controller(edge_a);

    const auto result = request_and_wait(address);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, edge_b); // sibling serves, not the cloud
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.deploy_retries, 1u);
    EXPECT_EQ(stats.retry_successes, 1u);
    EXPECT_EQ(stats.cloud_fallbacks, 0u);
    // The rejection is recorded with its typed reason.
    const auto& records = platform.deployment_engine().records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_FALSE(records[0].ok);
    EXPECT_EQ(records[0].cluster, "edge-a");
    EXPECT_EQ(records[0].admission,
              orchestrator::AdmissionReason::kInsufficientCpu);
    EXPECT_TRUE(records[1].ok);
    EXPECT_EQ(records[1].cluster, "edge-b");
}

TEST_F(TwoClusterFixture, SecondRetryFailureReleasesToCloud) {
    // Both edges too small: one retry, then the cloud answers.
    orchestrator::DockerClusterConfig tiny;
    tiny.capacity = {.cpu_millicores = 100, .memory_bytes = 0};
    platform.add_docker_cluster("edge-a", edge_a, tiny);
    platform.add_docker_cluster("edge-b", edge_b, tiny);
    const auto address = register_web(41, R"(          resources:
            requests:
              cpu: 500m
)");
    platform.start_controller(edge_a);

    const auto result = request_and_wait(address);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, platform.cloud_node());
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.deploy_retries, 1u);
    EXPECT_EQ(stats.retry_successes, 0u);
    EXPECT_EQ(stats.failures, 2u);
    EXPECT_EQ(stats.cloud_fallbacks, 1u);
}

TEST_F(TwoClusterFixture, InFlightDeploymentsSpreadLeastLoadedHerd) {
    // Regression: least_loaded only counted running instances, which are 0
    // for every cluster during the seconds-long Pull phase -- so a burst of
    // first requests for different services herded onto one cluster. The
    // in-flight deployment count must break the herd.
    platform.add_docker_cluster("edge-a", edge_a);
    platform.add_docker_cluster("edge-b", edge_b);
    const auto first = register_web(42);
    const auto second = register_web(43);
    ControllerConfig config;
    config.scheduler = kLeastLoadedScheduler;
    platform.start_controller(edge_a, std::move(config));

    int done = 0;
    platform.http_request(client, first, 100,
                          [&](const net::HttpResult& r) {
                              EXPECT_TRUE(r.ok) << r.error;
                              ++done;
                          });
    platform.http_request(client, second, 100,
                          [&](const net::HttpResult& r) {
                              EXPECT_TRUE(r.ok) << r.error;
                              ++done;
                          });
    platform.simulation().run_until(seconds(120));
    ASSERT_EQ(done, 2);
    const auto& records = platform.deployment_engine().records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_NE(records[0].cluster, records[1].cluster)
        << "both services herded onto " << records[0].cluster;
}

} // namespace
} // namespace tedge::sdn
