// Kubernetes model tests: the API server with watches, the control-loop
// chain deployment -> replicaset -> pod -> scheduler -> kubelet ->
// endpoints -> kube-proxy, and the emergent scale-up latency.
#include <gtest/gtest.h>

#include "orchestrator/k8s/k8s_cluster.hpp"

namespace tedge::orchestrator::k8s {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------- API server

TEST(ApiServer, WatchReceivesEventsAfterLatency) {
    sim::Simulation simulation;
    ApiServer api(simulation, {.request_latency = milliseconds(10),
                               .watch_latency = milliseconds(25)});
    std::vector<std::pair<WatchEventType, sim::SimTime>> events;
    api.pods().watch([&](const WatchEvent& event) {
        events.emplace_back(event.type, simulation.now());
    });

    PodObj pod;
    pod.name = "p1";
    api.request([&] { api.pods().upsert("p1", pod); });
    simulation.run();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].first, WatchEventType::kAdded);
    EXPECT_EQ(events[0].second, milliseconds(35)); // request + watch latency

    api.request([&] { api.pods().upsert("p1", pod); });
    api.request([&] { api.pods().erase("p1"); });
    simulation.run();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[1].first, WatchEventType::kModified);
    EXPECT_EQ(events[2].first, WatchEventType::kDeleted);
}

TEST(ApiServer, StoreAccessors) {
    sim::Simulation simulation;
    ApiServer api(simulation);
    EXPECT_EQ(api.pods().get("x"), nullptr);
    PodObj pod;
    pod.name = "x";
    api.pods().upsert("x", pod);
    EXPECT_NE(api.pods().get("x"), nullptr);
    EXPECT_EQ(api.pods().size(), 1u);
    EXPECT_EQ(api.pods().names().front(), "x");
    EXPECT_FALSE(api.pods().erase("zz"));
    EXPECT_TRUE(api.pods().erase("x"));
}

// ----------------------------------------------------------- full cluster

struct K8sFixture : ::testing::Test {
    K8sFixture() {
        node = topo.add_host("egs-k8s", net::Ipv4{10, 0, 0, 3}, 12);
        registry = std::make_unique<container::Registry>(
            simulation, container::RegistryProfile{.host = "docker.io"});
        registries.add(*registry);
        cluster = std::make_unique<K8sCluster>("k8s", simulation, topo,
                                               std::vector{node}, endpoints,
                                               registries, sim::Rng{1});

        app.name = "web";
        app.init_median = milliseconds(30);
        app.service_median = milliseconds(1);
        app.port = 80;

        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(30), 3);
        registry->put(image);

        spec.name = "svc";
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 80;
        spec.target_port = 80;
        spec.labels = {{"app", "svc"}, {"edge.service", "svc"}};
        ContainerTemplate tmpl;
        tmpl.name = "web";
        tmpl.image = image.ref;
        tmpl.app = &app;
        tmpl.container_port = 80;
        spec.containers.push_back(tmpl);
    }

    void pull() {
        bool ok = false;
        cluster->ensure_image(spec, [&](bool success, const container::PullTiming&) {
            ok = success;
        });
        simulation.run_until(simulation.now() + seconds(60));
        ASSERT_TRUE(ok);
    }

    void create() {
        bool ok = false;
        cluster->create_service(spec, [&](bool success) { ok = success; });
        simulation.run_until(simulation.now() + seconds(5));
        ASSERT_TRUE(ok);
    }

    /// Returns the virtual time from the scale_up call until the service
    /// port accepted traffic.
    sim::SimTime scale_up_and_wait_ready() {
        const sim::SimTime t0 = simulation.now();
        cluster->scale_up(spec.name, [](bool ok) { ASSERT_TRUE(ok); });
        while (simulation.now() - t0 < seconds(30)) {
            simulation.run_until(simulation.now() + milliseconds(100));
            const auto ready = cluster->ready_instances(spec.name);
            if (!ready.empty()) return simulation.now() - t0;
        }
        ADD_FAILURE() << "service never became ready";
        return sim::SimTime::zero();
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    RegistryDirectory registries;
    std::unique_ptr<container::Registry> registry;
    std::unique_ptr<K8sCluster> cluster;
    container::AppProfile app;
    container::Image image;
    ServiceSpec spec;
};

TEST_F(K8sFixture, CreateMakesDeploymentAndServiceWithZeroReplicas) {
    pull();
    create();
    EXPECT_TRUE(cluster->has_service("svc"));
    const auto* deployment = cluster->api().deployments().get("svc");
    ASSERT_NE(deployment, nullptr);
    EXPECT_EQ(deployment->replicas, 0);
    const auto* service = cluster->api().services().get("svc");
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->expose_port, 80);
    EXPECT_EQ(service->selector.at("edge.service"), "svc");
    // Scale-to-zero: the controllers settle with an RS but no pods.
    simulation.run_until(simulation.now() + seconds(2));
    EXPECT_NE(cluster->api().replicasets().get("svc-rs"), nullptr);
    EXPECT_EQ(cluster->api().pods().size(), 0u);
    EXPECT_TRUE(cluster->instances("svc").empty());
}

TEST_F(K8sFixture, ScaleUpDrivesControlLoopChainToReadyPod) {
    pull();
    create();
    const auto elapsed = scale_up_and_wait_ready();

    // One pod, bound to our node, Running and ready.
    ASSERT_EQ(cluster->api().pods().size(), 1u);
    const auto& pod = cluster->api().pods().items().begin()->second;
    EXPECT_EQ(pod.node, node);
    EXPECT_EQ(pod.phase, PodPhase::kRunning);
    EXPECT_TRUE(pod.ready);

    // Endpoints propagated and kube-proxy opened the node port.
    const auto* service = cluster->api().services().get("svc");
    ASSERT_EQ(service->endpoints.size(), 1u);
    const auto instances = cluster->ready_instances("svc");
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_TRUE(topo.port_open(node, instances[0].port));
    EXPECT_NE(endpoints.find(node, instances[0].port), nullptr);

    // Emergent latency: an orchestrator-grade multi-second chain, far above
    // a bare container start, in the paper's ~3 s ballpark.
    EXPECT_GT(elapsed, seconds(2));
    EXPECT_LT(elapsed, seconds(6));
}

TEST_F(K8sFixture, ServicePortForwardsToPod) {
    pull();
    create();
    scale_up_and_wait_ready();
    const auto instances = cluster->ready_instances("svc");
    ASSERT_EQ(instances.size(), 1u);
    const auto* handler = endpoints.find(node, instances[0].port);
    ASSERT_NE(handler, nullptr);
    bool replied = false;
    (*handler)(100, [&](sim::Bytes size) {
        EXPECT_EQ(size, app.response_size);
        replied = true;
    });
    simulation.run_until(simulation.now() + seconds(1));
    EXPECT_TRUE(replied);
}

TEST_F(K8sFixture, ScaleDownTerminatesPodAndClosesPort) {
    pull();
    create();
    scale_up_and_wait_ready();
    const auto port = cluster->ready_instances("svc")[0].port;

    cluster->scale_down("svc", [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run_until(simulation.now() + seconds(10));
    EXPECT_EQ(cluster->api().pods().size(), 0u);
    EXPECT_TRUE(cluster->instances("svc").empty());
    EXPECT_FALSE(topo.port_open(node, port));
    EXPECT_EQ(endpoints.find(node, port), nullptr);
    // Deployment and Service survive (scale to zero, not removed).
    EXPECT_TRUE(cluster->has_service("svc"));
}

TEST_F(K8sFixture, RemoveServiceCascades) {
    pull();
    create();
    scale_up_and_wait_ready();
    bool removed = false;
    cluster->remove_service("svc", [&](bool ok) { removed = ok; });
    simulation.run_until(simulation.now() + seconds(10));
    EXPECT_TRUE(removed);
    EXPECT_FALSE(cluster->has_service("svc"));
    EXPECT_EQ(cluster->api().pods().size(), 0u);
    EXPECT_EQ(cluster->api().replicasets().get("svc-rs"), nullptr);
    EXPECT_EQ(cluster->api().services().get("svc"), nullptr);
}

TEST_F(K8sFixture, MultipleReplicasViaRepeatedScaleUp) {
    pull();
    create();
    scale_up_and_wait_ready();
    cluster->scale_up("svc", [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run_until(simulation.now() + seconds(10));
    EXPECT_EQ(cluster->api().pods().size(), 2u);
    EXPECT_EQ(cluster->instances("svc").size(), 2u);
    EXPECT_EQ(cluster->total_instances(), 2u);
}

TEST_F(K8sFixture, KubeletPullsMissingImageOnDemand) {
    // No pre-pull: the kubelet pulls with IfNotPresent semantics.
    create();
    const auto elapsed = scale_up_and_wait_ready();
    EXPECT_TRUE(cluster->has_image(spec));
    EXPECT_GT(elapsed, seconds(2));
}

TEST_F(K8sFixture, DistinctNodePortsForManyServices) {
    pull();
    std::set<std::uint16_t> ports;
    for (int i = 0; i < 8; ++i) {
        ServiceSpec s = spec;
        s.name = "svc" + std::to_string(i);
        s.labels = {{"app", s.name}, {"edge.service", s.name}};
        cluster->create_service(s, [](bool ok) { ASSERT_TRUE(ok); });
    }
    simulation.run_until(simulation.now() + seconds(5));
    for (int i = 0; i < 8; ++i) {
        const auto* service =
            cluster->api().services().get("svc" + std::to_string(i));
        ASSERT_NE(service, nullptr);
        EXPECT_TRUE(ports.insert(service->node_port).second);
    }
    EXPECT_TRUE(ports.contains(80));
}

TEST_F(K8sFixture, CustomPlacementPolicyIsUsed) {
    // A second node plus a policy pinning pods to it by schedulerName.
    const auto node2 = topo.add_host("worker2", net::Ipv4{10, 0, 0, 9}, 4);
    K8sCluster two_nodes("k8s2", simulation, topo, {node, node2}, endpoints,
                         registries, sim::Rng{2});

    class PinToSecond final : public PodPlacementPolicy {
    public:
        explicit PinToSecond(net::NodeId target) : target_(target) {}
        std::optional<net::NodeId> pick(const PodObj&,
                                        const std::vector<net::NodeId>&,
                                        const ApiServer&) override {
            return target_;
        }

    private:
        net::NodeId target_;
    };
    two_nodes.scheduler().register_policy("pin2",
                                          std::make_unique<PinToSecond>(node2));

    ServiceSpec pinned = spec;
    pinned.name = "pinned";
    pinned.labels = {{"app", "pinned"}, {"edge.service", "pinned"}};
    pinned.scheduler_name = "pin2";
    two_nodes.create_service(pinned, [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run_until(simulation.now() + seconds(2));
    two_nodes.scale_up("pinned", [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run_until(simulation.now() + seconds(20));

    const auto instances = two_nodes.instances("pinned");
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_EQ(instances[0].node, node2);
}

TEST_F(K8sFixture, ScaleUpUnknownServiceReportsFalse) {
    bool result = true;
    cluster->scale_up("ghost", [&](bool ok) { result = ok; });
    simulation.run_until(simulation.now() + seconds(1));
    EXPECT_FALSE(result);
}

} // namespace
} // namespace tedge::orchestrator::k8s
