// Resource model tests (DESIGN §10): quantity parsing, the reserve/release
// ledger, admission control on Docker and Kubernetes clusters under demand
// exceeding capacity, capacity release on scale-down, and the
// free-capacity-never-negative property.
#include <gtest/gtest.h>

#include "orchestrator/docker_cluster.hpp"
#include "orchestrator/k8s/k8s_cluster.hpp"
#include "orchestrator/resources.hpp"
#include "sdn/annotator.hpp"
#include "simcore/random.hpp"

namespace tedge::orchestrator {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------------ parsing

TEST(ResourceQuantities, ParsesCpuMillicores) {
    EXPECT_EQ(parse_cpu_millicores("500m"), 500u);
    EXPECT_EQ(parse_cpu_millicores("2"), 2000u);
    EXPECT_EQ(parse_cpu_millicores("0.5"), 500u);
    EXPECT_EQ(parse_cpu_millicores("1.25"), 1250u);
    EXPECT_EQ(parse_cpu_millicores("0"), 0u);
    EXPECT_FALSE(parse_cpu_millicores(""));
    EXPECT_FALSE(parse_cpu_millicores("abc"));
    EXPECT_FALSE(parse_cpu_millicores("-1"));
    EXPECT_FALSE(parse_cpu_millicores("500x"));
}

TEST(ResourceQuantities, ParsesMemoryBytes) {
    EXPECT_EQ(parse_memory_bytes("1024"), 1024u);
    EXPECT_EQ(parse_memory_bytes("128Mi"), 128ull * 1024 * 1024);
    EXPECT_EQ(parse_memory_bytes("1Gi"), 1024ull * 1024 * 1024);
    EXPECT_EQ(parse_memory_bytes("2Ki"), 2048u);
    EXPECT_EQ(parse_memory_bytes("64M"), 64'000'000u);
    EXPECT_EQ(parse_memory_bytes("1G"), 1'000'000'000u);
    EXPECT_FALSE(parse_memory_bytes("12Q"));
    EXPECT_FALSE(parse_memory_bytes("-5Mi"));
    EXPECT_FALSE(parse_memory_bytes(""));
}

TEST(ResourceQuantities, FormatsRoundTrip) {
    EXPECT_EQ(parse_cpu_millicores(format_cpu_millicores(1500)), 1500u);
    EXPECT_EQ(parse_memory_bytes(format_memory_bytes(sim::mib(128))),
              sim::mib(128));
}

// ------------------------------------------------------------------- ledger

TEST(ResourceLedger, AdmitsUntilFullWithTypedRejections) {
    ResourceLedger ledger({.cpu_millicores = 1000, .memory_bytes = sim::mib(512)});
    const ResourceRequest half{500, sim::mib(200)};
    EXPECT_EQ(ledger.admit(half), AdmissionReason::kAdmitted);
    EXPECT_EQ(ledger.admit(half), AdmissionReason::kAdmitted);
    // CPU is the binding dimension now: 1000/1000 used.
    EXPECT_EQ(ledger.admit({100, 0}), AdmissionReason::kInsufficientCpu);
    EXPECT_EQ(ledger.admit({0, sim::mib(200)}),
              AdmissionReason::kInsufficientMemory);
    EXPECT_EQ(ledger.admissions(), 2u);
    EXPECT_EQ(ledger.rejections(), 2u);
    EXPECT_DOUBLE_EQ(ledger.cpu_fraction(), 1.0);
    EXPECT_DOUBLE_EQ(ledger.pressure(), 1.0);

    ledger.release(half);
    EXPECT_EQ(ledger.used().cpu_millicores, 500u);
    EXPECT_EQ(ledger.admit({100, 0}), AdmissionReason::kAdmitted);
    // Peak keeps the high-water mark from before the release.
    EXPECT_EQ(ledger.peak().cpu_millicores, 1000u);
}

TEST(ResourceLedger, UnlimitedDimensionsAdmitEverything) {
    ResourceLedger unlimited;
    EXPECT_FALSE(unlimited.limited());
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(unlimited.admit({1'000'000, sim::gib(100)}),
                  AdmissionReason::kAdmitted);
    }
    EXPECT_DOUBLE_EQ(unlimited.pressure(), 0.0);

    // CPU-only budget: memory stays unlimited.
    ResourceLedger cpu_only(ResourceCapacity{.cpu_millicores = 100});
    EXPECT_EQ(cpu_only.admit({50, sim::gib(100)}), AdmissionReason::kAdmitted);
    EXPECT_EQ(cpu_only.admit({60, 0}), AdmissionReason::kInsufficientCpu);
}

TEST(ResourceLedger, DoubleReleaseClampsAtZero) {
    ResourceLedger ledger({.cpu_millicores = 1000, .memory_bytes = sim::mib(64)});
    const ResourceRequest r{400, sim::mib(32)};
    ASSERT_EQ(ledger.admit(r), AdmissionReason::kAdmitted);
    ledger.release(r);
    ledger.release(r); // caller bug: must clamp, not underflow
    EXPECT_EQ(ledger.used().cpu_millicores, 0u);
    EXPECT_EQ(ledger.used().memory_bytes, 0u);
    // Free capacity never exceeds the budget: a full admit still fits, one
    // more than full still rejects.
    EXPECT_EQ(ledger.admit({1000, sim::mib(64)}), AdmissionReason::kAdmitted);
    EXPECT_EQ(ledger.admit({1, 0}), AdmissionReason::kInsufficientCpu);
}

// Property: under an arbitrary interleaving of admissions and releases, used
// never exceeds capacity and never goes negative (uint underflow would show
// up as a huge value).
TEST(ResourceLedgerProperty, FreeCapacityNeverNegative) {
    sim::Rng rng(42);
    ResourceLedger ledger({.cpu_millicores = 2000, .memory_bytes = sim::mib(256)});
    std::vector<ResourceRequest> admitted;
    for (int step = 0; step < 5000; ++step) {
        const ResourceRequest request{rng() % 700,
                                      (rng() % 64) * sim::mib(1)};
        if (admitted.empty() || rng() % 2 == 0) {
            if (ledger.admit(request) == AdmissionReason::kAdmitted) {
                admitted.push_back(request);
            }
        } else {
            const auto index = rng() % admitted.size();
            ledger.release(admitted[index]);
            admitted.erase(admitted.begin() +
                           static_cast<std::ptrdiff_t>(index));
        }
        ASSERT_LE(ledger.used().cpu_millicores, 2000u) << "step " << step;
        ASSERT_LE(ledger.used().memory_bytes, sim::mib(256)) << "step " << step;
        ASSERT_LE(ledger.used().cpu_millicores, ledger.peak().cpu_millicores);
    }
}

// ------------------------------------------------- annotator `resources:`

TEST(AnnotatorResources, ParsesRequestsIntoContainerTemplate) {
    const container::AppProfile profile{.name = "web", .port = 80};
    sdn::Annotator annotator(
        [&](const container::ImageRef&) { return &profile; });
    const auto annotated = annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - image: web:1
          ports:
            - containerPort: 80
          resources:
            requests:
              cpu: 250m
              memory: 96Mi
)",
                                              {net::Ipv4{203, 0, 113, 5}, 80});
    ASSERT_EQ(annotated.spec.containers.size(), 1u);
    EXPECT_EQ(annotated.spec.containers[0].resources.cpu_millicores, 250u);
    EXPECT_EQ(annotated.spec.containers[0].resources.memory_bytes, sim::mib(96));
    EXPECT_EQ(annotated.spec.resource_request().cpu_millicores, 250u);
}

TEST(AnnotatorResources, MalformedQuantityThrows) {
    const container::AppProfile profile{.name = "web", .port = 80};
    sdn::Annotator annotator(
        [&](const container::ImageRef&) { return &profile; });
    EXPECT_THROW(annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - image: web:1
          resources:
            requests:
              cpu: lots
)",
                                    {net::Ipv4{203, 0, 113, 5}, 80}),
                 std::invalid_argument);
}

// ------------------------------------------------------------ DockerCluster

struct DockerCapacityFixture : ::testing::Test {
    DockerCapacityFixture() {
        node = topo.add_host("egs", net::Ipv4{10, 0, 0, 2}, 12);
        registry = std::make_unique<container::Registry>(
            simulation, container::RegistryProfile{.host = "docker.io"});
        registries.add(*registry);

        DockerClusterConfig config;
        config.capacity = {.cpu_millicores = 1000, .memory_bytes = sim::mib(512)};
        cluster = std::make_unique<DockerCluster>(
            "docker", simulation, topo, node, endpoints, registries,
            sim::Rng{1}, config);

        app.name = "web";
        app.init_median = milliseconds(20);
        app.port = 80;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(10), 1);
        registry->put(image);
    }

    ServiceSpec make_spec(const std::string& name, std::uint64_t millicores,
                          std::uint64_t memory) {
        ServiceSpec spec;
        spec.name = name;
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 80;
        spec.target_port = 80;
        ContainerTemplate tmpl;
        tmpl.name = "web";
        tmpl.image = image.ref;
        tmpl.app = &app;
        tmpl.container_port = 80;
        tmpl.resources = {millicores, memory};
        spec.containers.push_back(tmpl);
        return spec;
    }

    void pull(const ServiceSpec& spec) {
        bool ok = false;
        cluster->ensure_image(spec,
                              [&](bool success, const container::PullTiming&) {
                                  ok = success;
                              });
        simulation.run();
        ASSERT_TRUE(ok);
    }

    bool create(const ServiceSpec& spec) {
        bool ok = false;
        cluster->create_service(spec, [&](bool success) { ok = success; });
        simulation.run();
        return ok;
    }

    bool scale_up(const std::string& name) {
        bool ok = false;
        cluster->scale_up(name, [&](bool success) { ok = success; });
        simulation.run_until(simulation.now() + seconds(5));
        return ok;
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    RegistryDirectory registries;
    std::unique_ptr<container::Registry> registry;
    std::unique_ptr<DockerCluster> cluster;
    container::AppProfile app;
    container::Image image;
};

TEST_F(DockerCapacityFixture, RejectsServiceLargerThanTotalCapacity) {
    const auto spec = make_spec("huge", 1500, sim::mib(64));
    pull(spec);
    EXPECT_FALSE(create(spec)); // can never fit: rejected at Create
    EXPECT_FALSE(cluster->has_service("huge"));
}

TEST_F(DockerCapacityFixture, OverloadRejectsWithTypedReasonAtScaleUp) {
    const auto a = make_spec("svc-a", 400, sim::mib(100));
    const auto b = make_spec("svc-b", 400, sim::mib(100));
    const auto c = make_spec("svc-c", 400, sim::mib(100));
    pull(a);
    ASSERT_TRUE(create(a));
    ASSERT_TRUE(create(b));
    ASSERT_TRUE(create(c)); // creating is fine; capacity binds at start
    EXPECT_TRUE(scale_up("svc-a"));
    EXPECT_TRUE(scale_up("svc-b"));
    // 800/1000 millicores used; a third 400m instance does not fit.
    EXPECT_EQ(cluster->admits(c), AdmissionReason::kInsufficientCpu);
    EXPECT_FALSE(scale_up("svc-c"));
    EXPECT_TRUE(cluster->instances("svc-c").empty());

    const auto util = cluster->utilization();
    EXPECT_TRUE(util.limited());
    EXPECT_EQ(util.used.cpu_millicores, 800u);
    EXPECT_DOUBLE_EQ(util.cpu_fraction(), 0.8);
    EXPECT_EQ(util.admissions, 2u);
    EXPECT_EQ(util.rejections, 1u);
    // Running services report themselves admitted (they already hold their
    // reservation); only new placements are checked against free capacity.
    EXPECT_EQ(cluster->admits(a), AdmissionReason::kAdmitted);
}

TEST_F(DockerCapacityFixture, MemoryRejectionIsTyped) {
    const auto a = make_spec("svc-a", 100, sim::mib(300));
    const auto b = make_spec("svc-b", 100, sim::mib(300));
    pull(a);
    ASSERT_TRUE(create(a));
    ASSERT_TRUE(create(b));
    EXPECT_TRUE(scale_up("svc-a"));
    EXPECT_EQ(cluster->admits(b), AdmissionReason::kInsufficientMemory);
    EXPECT_FALSE(scale_up("svc-b"));
}

TEST_F(DockerCapacityFixture, ScaleDownReleasesCapacityForWaitingService) {
    const auto a = make_spec("svc-a", 600, sim::mib(100));
    const auto b = make_spec("svc-b", 600, sim::mib(100));
    pull(a);
    ASSERT_TRUE(create(a));
    ASSERT_TRUE(create(b));
    EXPECT_TRUE(scale_up("svc-a"));
    EXPECT_FALSE(scale_up("svc-b")); // full

    bool down = false;
    cluster->scale_down("svc-a", [&](bool ok) { down = ok; });
    simulation.run();
    ASSERT_TRUE(down);
    EXPECT_EQ(cluster->utilization().used.cpu_millicores, 0u);
    // The evicted capacity serves the service that was turned away.
    EXPECT_TRUE(scale_up("svc-b"));
    EXPECT_EQ(cluster->utilization().used.cpu_millicores, 600u);
    EXPECT_EQ(cluster->utilization().peak_used.cpu_millicores, 600u);
}

TEST_F(DockerCapacityFixture, UnlimitedClusterIsUnchanged) {
    auto unlimited = std::make_unique<DockerCluster>(
        "free", simulation, topo, node, endpoints, registries, sim::Rng{2});
    EXPECT_FALSE(unlimited->utilization().limited());
    const auto spec = make_spec("svc", 1'000'000, sim::gib(100));
    EXPECT_EQ(unlimited->admits(spec), AdmissionReason::kAdmitted);
}

// --------------------------------------------------------------- K8sCluster

struct K8sCapacityFixture : ::testing::Test {
    K8sCapacityFixture() {
        node = topo.add_host("egs-k8s", net::Ipv4{10, 0, 0, 3}, 12);
        registry = std::make_unique<container::Registry>(
            simulation, container::RegistryProfile{.host = "docker.io"});
        registries.add(*registry);

        k8s::K8sClusterConfig config;
        config.node_capacity = {.cpu_millicores = 1000,
                                .memory_bytes = sim::mib(512)};
        cluster = std::make_unique<k8s::K8sCluster>(
            "k8s", simulation, topo, std::vector{node}, endpoints, registries,
            sim::Rng{1}, config);

        app.name = "web";
        app.init_median = milliseconds(30);
        app.port = 80;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(10), 1);
        registry->put(image);
    }

    ServiceSpec make_spec(const std::string& name, std::uint64_t millicores) {
        ServiceSpec spec;
        spec.name = name;
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 80;
        spec.target_port = 80;
        spec.labels = {{"app", name}, {"edge.service", name}};
        ContainerTemplate tmpl;
        tmpl.name = "web";
        tmpl.image = image.ref;
        tmpl.app = &app;
        tmpl.container_port = 80;
        tmpl.resources = {millicores, sim::mib(100)};
        spec.containers.push_back(tmpl);
        return spec;
    }

    void prepare(const ServiceSpec& spec) {
        bool pulled = false;
        cluster->ensure_image(spec,
                              [&](bool ok, const container::PullTiming&) {
                                  pulled = ok;
                              });
        simulation.run_until(simulation.now() + seconds(60));
        ASSERT_TRUE(pulled);
        bool created = false;
        cluster->create_service(spec, [&](bool ok) { created = ok; });
        simulation.run_until(simulation.now() + seconds(5));
        ASSERT_TRUE(created);
    }

    bool scale_up(const std::string& name) {
        bool ok = false;
        cluster->scale_up(name, [&](bool success) { ok = success; });
        simulation.run_until(simulation.now() + seconds(30));
        return ok;
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    RegistryDirectory registries;
    std::unique_ptr<container::Registry> registry;
    std::unique_ptr<k8s::K8sCluster> cluster;
    container::AppProfile app;
    container::Image image;
};

TEST_F(K8sCapacityFixture, OverloadRejectsAtAdmissionWithTypedReason) {
    const auto a = make_spec("svc-a", 600);
    const auto b = make_spec("svc-b", 600);
    prepare(a);
    prepare(b);
    ASSERT_TRUE(scale_up("svc-a"));
    EXPECT_FALSE(cluster->ready_instances("svc-a").empty());

    // 600/1000 millicores bound; a second 600m pod fits on no node.
    EXPECT_EQ(cluster->admits(b), AdmissionReason::kInsufficientCpu);
    EXPECT_FALSE(scale_up("svc-b"));
    EXPECT_TRUE(cluster->instances("svc-b").empty());

    const auto util = cluster->utilization();
    EXPECT_EQ(util.capacity.cpu_millicores, 1000u);
    EXPECT_EQ(util.used.cpu_millicores, 600u);
    EXPECT_GE(util.rejections, 1u);
}

TEST_F(K8sCapacityFixture, ScaleDownFreesNodeForRejectedService) {
    const auto a = make_spec("svc-a", 600);
    const auto b = make_spec("svc-b", 600);
    prepare(a);
    prepare(b);
    ASSERT_TRUE(scale_up("svc-a"));
    ASSERT_FALSE(scale_up("svc-b"));

    bool down = false;
    cluster->scale_down("svc-a", [&](bool ok) { down = ok; });
    simulation.run_until(simulation.now() + seconds(30));
    ASSERT_TRUE(down);
    EXPECT_EQ(cluster->utilization().used.cpu_millicores, 0u);

    ASSERT_TRUE(scale_up("svc-b"));
    EXPECT_FALSE(cluster->ready_instances("svc-b").empty());
    EXPECT_EQ(cluster->utilization().used.cpu_millicores, 600u);
}

TEST_F(K8sCapacityFixture, PodsThatFitTogetherShareTheNode) {
    const auto a = make_spec("svc-a", 400);
    const auto b = make_spec("svc-b", 400);
    prepare(a);
    prepare(b);
    EXPECT_TRUE(scale_up("svc-a"));
    EXPECT_TRUE(scale_up("svc-b"));
    EXPECT_FALSE(cluster->ready_instances("svc-a").empty());
    EXPECT_FALSE(cluster->ready_instances("svc-b").empty());
    EXPECT_EQ(cluster->utilization().used.cpu_millicores, 800u);
    // Kubelet's view agrees with the cluster ledger.
    EXPECT_EQ(cluster->utilization().peak_used.cpu_millicores, 800u);
}

} // namespace
} // namespace tedge::orchestrator
