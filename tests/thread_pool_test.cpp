// Thread pool tests: parallelism across simulation replicas.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "simcore/thread_pool.hpp"
#include "workload/runner.hpp"

namespace tedge::sim {
namespace {

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter, i] {
            ++counter;
            return i * 2;
        }));
    }
    int sum = 0;
    for (auto& f : futures) sum += f.get();
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(sum, 2 * (99 * 100) / 2);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(256);
    pool.parallel_for(256, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagate) {
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    EXPECT_THROW(pool.parallel_for(4,
                                   [](std::size_t i) {
                                       if (i == 2) throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(RunReplicas, CollectsResultsInSeedOrder) {
    const auto results = workload::run_replicas<std::uint64_t>(
        8, [](std::uint64_t seed) { return seed * 10; }, /*base_seed=*/5);
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], (5 + i) * 10);
    }
}

TEST(RunReplicas, ReplicatedSimulationsAreIndependent) {
    // Each replica runs its own Simulation on a pool thread; results must be
    // deterministic per seed regardless of scheduling.
    auto one = [](std::uint64_t seed) {
        Simulation sim;
        Rng rng(seed);
        double total = 0;
        for (int i = 0; i < 50; ++i) {
            sim.schedule(from_seconds(rng.uniform(0.0, 1.0)),
                         [&total, &sim] { total += sim.now().seconds(); });
        }
        sim.run();
        return total;
    };
    const auto a = workload::run_replicas<double>(6, one, 1);
    const auto b = workload::run_replicas<double>(6, one, 1);
    EXPECT_EQ(a, b);
    EXPECT_NE(a[0], a[1]); // different seeds -> different runs
}

} // namespace
} // namespace tedge::sim
