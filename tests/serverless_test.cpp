// Serverless (WASM) runtime and FaasCluster tests: millisecond cold starts,
// warm pools, keep-alive reaping, and side-by-side operation with container
// clusters behind the same transparent-access controller.
#include <gtest/gtest.h>

#include "core/edge_platform.hpp"
#include "serverless/faas_cluster.hpp"

namespace tedge::serverless {
namespace {

using sim::milliseconds;
using sim::seconds;

struct FaasFixture : ::testing::Test {
    FaasFixture() {
        node = topo.add_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        registry = std::make_unique<container::Registry>(
            simulation, container::RegistryProfile{.host = "docker.io"});
        registries.add(*registry);
        cluster = std::make_unique<FaasCluster>("faas", simulation, topo, node,
                                                endpoints, registries, sim::Rng{1});

        app.name = "fn";
        app.init_median = milliseconds(1);
        app.service_median = sim::microseconds(300);
        app.response_size = 256;
        app.concurrency = 1;
        app.port = 8080;

        module.ref = *container::ImageRef::parse("hello-wasm:1");
        module.layers = container::make_layers("hello-wasm", sim::kib(800), 1);
        registry->put(module);

        spec.name = "fn";
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 8080};
        spec.expose_port = 8080;
        spec.target_port = 8080;
        orchestrator::ContainerTemplate tmpl;
        tmpl.name = "fn";
        tmpl.image = module.ref;
        tmpl.app = &app;
        tmpl.container_port = 8080;
        spec.containers.push_back(tmpl);
    }

    void pull_and_create() {
        bool pulled = false;
        cluster->ensure_image(spec, [&](bool ok, const container::PullTiming&) {
            pulled = ok;
        });
        simulation.run();
        ASSERT_TRUE(pulled);
        bool created = false;
        cluster->create_service(spec, [&](bool ok) { created = ok; });
        simulation.run();
        ASSERT_TRUE(created);
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId node;
    orchestrator::RegistryDirectory registries;
    std::unique_ptr<container::Registry> registry;
    std::unique_ptr<FaasCluster> cluster;
    container::AppProfile app;
    container::Image module;
    orchestrator::ServiceSpec spec;
};

TEST_F(FaasFixture, CreateBindsGatewayAndIsReadyScaleFromZero) {
    pull_and_create();
    const auto instances = cluster->instances("fn");
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_TRUE(instances[0].ready); // gateway accepts before any instance runs
    EXPECT_TRUE(topo.port_open(node, instances[0].port));
    EXPECT_EQ(cluster->runtime().warm_instances("fn"), 0);
}

TEST_F(FaasFixture, FirstInvocationPaysMillisecondColdStart) {
    pull_and_create();
    const auto port = cluster->instances("fn")[0].port;
    const auto* handler = endpoints.find(node, port);
    ASSERT_NE(handler, nullptr);

    const sim::SimTime t0 = simulation.now();
    sim::SimTime first_latency;
    (*handler)(100, [&](sim::Bytes size) {
        EXPECT_EQ(size, 256);
        first_latency = simulation.now() - t0;
    });
    simulation.run();
    EXPECT_EQ(cluster->runtime().cold_starts(), 1u);
    // Cold start ~6 ms + service -- two orders of magnitude below a
    // container start.
    EXPECT_GT(first_latency, milliseconds(3));
    EXPECT_LT(first_latency, milliseconds(30));

    // Second invocation hits the warm instance: sub-millisecond runtime cost.
    const sim::SimTime t1 = simulation.now();
    sim::SimTime second_latency;
    (*handler)(100, [&](sim::Bytes) { second_latency = simulation.now() - t1; });
    simulation.run();
    EXPECT_EQ(cluster->runtime().cold_starts(), 1u); // no new cold start
    EXPECT_LT(second_latency, milliseconds(2));
}

TEST_F(FaasFixture, ScaleUpPrewarmsAnInstance) {
    pull_and_create();
    bool scaled = false;
    cluster->scale_up("fn", [&](bool ok) { scaled = ok; });
    simulation.run();
    EXPECT_TRUE(scaled);
    EXPECT_EQ(cluster->runtime().warm_instances("fn"), 1);

    // A request now needs no cold start at all.
    const auto port = cluster->instances("fn")[0].port;
    const std::uint64_t cold_before = cluster->runtime().cold_starts();
    (*endpoints.find(node, port))(100, [](sim::Bytes) {});
    simulation.run();
    EXPECT_EQ(cluster->runtime().cold_starts(), cold_before);
}

TEST_F(FaasFixture, KeepAliveReapsIdleInstances) {
    pull_and_create();
    cluster->scale_up("fn", [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run();
    EXPECT_EQ(cluster->runtime().warm_instances("fn"), 1);
    simulation.run_until(simulation.now() + seconds(60)); // > 30 s keep-alive
    EXPECT_EQ(cluster->runtime().warm_instances("fn"), 0);
}

TEST_F(FaasFixture, ScaleDownDropsWarmPool) {
    pull_and_create();
    cluster->scale_up("fn", [](bool ok) { ASSERT_TRUE(ok); });
    simulation.run();
    bool down = false;
    cluster->scale_down("fn", [&](bool ok) { down = ok; });
    simulation.run();
    EXPECT_TRUE(down);
    EXPECT_EQ(cluster->runtime().warm_instances("fn"), 0);
    // Gateway stays bound: the function still answers (with a cold start).
    EXPECT_TRUE(cluster->instances("fn")[0].ready);
}

TEST_F(FaasFixture, RemoveUnbindsGateway) {
    pull_and_create();
    const auto port = cluster->instances("fn")[0].port;
    bool removed = false;
    cluster->remove_service("fn", [&](bool ok) { removed = ok; });
    simulation.run();
    EXPECT_TRUE(removed);
    EXPECT_FALSE(cluster->has_service("fn"));
    EXPECT_FALSE(topo.port_open(node, port));
    EXPECT_TRUE(cluster->instances("fn").empty());
}

TEST_F(FaasFixture, BacklogQueuesBeyondInstanceCap) {
    pull_and_create();
    auto& runtime = cluster->runtime();
    // Deploy a capped function directly on the runtime.
    FunctionSpec fn;
    fn.name = "capped";
    fn.module = module.ref;
    fn.app = &app;
    fn.max_instances = 1;
    bool deployed = false;
    runtime.deploy(fn, 9500, [&] { deployed = true; });
    simulation.run();
    ASSERT_TRUE(deployed);

    const auto* handler = endpoints.find(node, 9500);
    std::vector<sim::SimTime> completions;
    for (int i = 0; i < 3; ++i) {
        (*handler)(10, [&](sim::Bytes) { completions.push_back(simulation.now()); });
    }
    simulation.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_LT(completions[0], completions[1]);
    EXPECT_LT(completions[1], completions[2]); // strictly serialized
}

TEST_F(FaasFixture, ModulePullIsFastComparedToContainers) {
    bool pulled = false;
    container::PullTiming timing;
    cluster->ensure_image(spec, [&](bool ok, const container::PullTiming& t) {
        pulled = ok;
        timing = t;
    });
    simulation.run();
    ASSERT_TRUE(pulled);
    // A sub-MiB module downloads in well under a second even from a remote
    // registry profile.
    EXPECT_LT(timing.duration(), seconds(1));
}

// -------------------------------------------------- transparent side-by-side

TEST(FaasIntegration, SameYamlServesFromWasmBehindTheController) {
    core::EdgePlatform platform;
    const auto client = platform.add_client("ue", net::Ipv4{10, 0, 1, 1});
    const auto edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
    platform.add_cloud();

    auto& hub = platform.add_registry({.host = "docker.io"});
    container::Image module;
    module.ref = *container::ImageRef::parse("hello-wasm:1");
    module.layers = container::make_layers("hello-wasm", sim::kib(500), 1);
    hub.put(module);

    container::AppProfile app;
    app.name = "fn";
    app.init_median = milliseconds(1);
    app.service_median = sim::microseconds(200);
    app.port = 8080;
    platform.add_app_profile("hello-wasm:1", app);

    platform.add_faas_cluster("faas", edge);
    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 70}, 8080};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: fn
          image: hello-wasm:1
          ports:
            - containerPort: 8080
)");
    platform.start_controller(edge);

    net::HttpResult result;
    bool done = false;
    platform.http_request(client, address, 100, [&](const net::HttpResult& r) {
        result = r;
        done = true;
    });
    platform.simulation().run_until(seconds(60));
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, edge);
    // Whole first request -- including the module pull, function create, and
    // cold start -- comfortably under a second: the serverless upside.
    EXPECT_LT(result.time_total, milliseconds(600));
}

} // namespace
} // namespace tedge::serverless
