// Unit tests for the simulation kernel: time type, event queue, simulation
// loop, and periodic events.
#include <gtest/gtest.h>

#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace tedge::sim {
namespace {

TEST(SimTime, ConversionsAreExact) {
    EXPECT_EQ(milliseconds(1).ns(), 1'000'000);
    EXPECT_EQ(seconds(2).ns(), 2'000'000'000);
    EXPECT_EQ(microseconds(5).ns(), 5'000);
    EXPECT_DOUBLE_EQ(milliseconds(1500).seconds(), 1.5);
    EXPECT_DOUBLE_EQ(seconds(3).ms(), 3000.0);
}

TEST(SimTime, FromSecondsRoundsToNearestNanosecond) {
    EXPECT_EQ(from_seconds(1e-9).ns(), 1);
    EXPECT_EQ(from_seconds(0.5).ns(), 500'000'000);
    EXPECT_EQ(from_ms(1.5).ns(), 1'500'000);
    EXPECT_EQ(from_us(2.0).ns(), 2'000);
}

TEST(SimTime, ArithmeticAndComparison) {
    const SimTime a = milliseconds(10);
    const SimTime b = milliseconds(3);
    EXPECT_EQ((a + b).ns(), milliseconds(13).ns());
    EXPECT_EQ((a - b).ns(), milliseconds(7).ns());
    EXPECT_EQ((a * 3).ns(), milliseconds(30).ns());
    EXPECT_LT(b, a);
    EXPECT_GE(a, a);
    SimTime c = a;
    c += b;
    EXPECT_EQ(c, milliseconds(13));
}

TEST(SimTime, HumanReadableString) {
    EXPECT_EQ(nanoseconds(5).str(), "5ns");
    EXPECT_NE(microseconds(12).str().find("us"), std::string::npos);
    EXPECT_NE(milliseconds(12).str().find("ms"), std::string::npos);
    EXPECT_NE(seconds(2).str().find("s"), std::string::npos);
}

TEST(Units, TransferTime) {
    // 1 MB at 8 Mbit/s = 1 second.
    EXPECT_EQ(mbit_per_sec(8).transfer_time(1'000'000).ns(), seconds(1).ns());
    EXPECT_EQ(DataRate{}.transfer_time(12345), SimTime::zero());
    EXPECT_EQ(gbit_per_sec(1).transfer_time(0), SimTime::zero());
}

TEST(Units, SizeHelpers) {
    EXPECT_EQ(kib(1), 1024);
    EXPECT_EQ(mib(1), 1024 * 1024);
    EXPECT_EQ(gib(1), 1024LL * 1024 * 1024);
}

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue queue;
    std::vector<int> order;
    queue.push(milliseconds(30), [&] { order.push_back(3); });
    queue.push(milliseconds(10), [&] { order.push_back(1); });
    queue.push(milliseconds(20), [&] { order.push_back(2); });
    while (!queue.empty()) {
        auto [at, cb] = queue.pop();
        cb();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        queue.push(milliseconds(5), [&order, i] { order.push_back(i); });
    }
    while (!queue.empty()) queue.pop().second();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelledEventsDoNotFire) {
    EventQueue queue;
    int fired = 0;
    auto handle = queue.push(milliseconds(1), [&] { ++fired; });
    queue.push(milliseconds(2), [&] { ++fired; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    while (!queue.empty()) queue.pop().second();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
    EventQueue queue;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 5; ++i) {
        handles.push_back(queue.push(milliseconds(i), [] {}));
    }
    for (auto& handle : handles) handle.cancel();
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopOnEmptyThrows) {
    EventQueue queue;
    EXPECT_THROW(queue.pop(), std::logic_error);
    EXPECT_THROW(static_cast<void>(queue.next_time()), std::logic_error);
}

TEST(Simulation, ClockAdvancesWithEvents) {
    Simulation sim;
    SimTime seen;
    sim.schedule(milliseconds(42), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, milliseconds(42));
    EXPECT_EQ(sim.now(), milliseconds(42));
}

TEST(Simulation, NestedSchedulingWorks) {
    Simulation sim;
    std::vector<std::int64_t> times;
    sim.schedule(milliseconds(10), [&] {
        times.push_back(sim.now().ns());
        sim.schedule(milliseconds(5), [&] { times.push_back(sim.now().ns()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1], milliseconds(15).ns());
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
    Simulation sim;
    int fired = 0;
    sim.schedule(milliseconds(10), [&] { ++fired; });
    sim.schedule(milliseconds(100), [&] { ++fired; });
    sim.run_until(milliseconds(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), milliseconds(50));
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventAtExactDeadlineRuns) {
    Simulation sim;
    bool fired = false;
    sim.schedule(milliseconds(50), [&] { fired = true; });
    sim.run_until(milliseconds(50));
    EXPECT_TRUE(fired);
}

TEST(Simulation, StopHaltsRun) {
    Simulation sim;
    int fired = 0;
    sim.schedule(milliseconds(1), [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(milliseconds(2), [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.has_pending_events());
}

TEST(Simulation, NegativeDelayThrows) {
    Simulation sim;
    EXPECT_THROW(sim.schedule(milliseconds(-1), [] {}), std::invalid_argument);
}

TEST(Simulation, ScheduleAtInThePastThrows) {
    Simulation sim;
    sim.schedule(milliseconds(10), [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(milliseconds(5), [] {}), std::invalid_argument);
}

TEST(Simulation, PeriodicFiresUntilCancelled) {
    Simulation sim;
    int ticks = 0;
    auto handle = sim.schedule_periodic(milliseconds(10), [&] {
        if (++ticks == 5) sim.stop();
    });
    sim.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(sim.now(), milliseconds(50));
    handle.cancel();
    sim.run();
    EXPECT_EQ(ticks, 5);
}

TEST(Simulation, PeriodicCancelFromInsideCallback) {
    Simulation sim;
    int ticks = 0;
    Simulation::PeriodicHandle handle;
    handle = sim.schedule_periodic(milliseconds(1), [&] {
        if (++ticks == 3) handle.cancel();
    });
    sim.run_until(seconds(1));
    EXPECT_EQ(ticks, 3);
}

TEST(Simulation, DeterministicExecutionCount) {
    auto run_once = [] {
        Simulation sim;
        for (int i = 0; i < 100; ++i) {
            sim.schedule(milliseconds(i % 7), [&sim] {
                sim.schedule(milliseconds(1), [] {});
            });
        }
        sim.run();
        return sim.events_executed();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace tedge::sim
