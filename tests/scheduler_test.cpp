// Global scheduler tests: the registry ("dynamic loading") and the FAST/BEST
// contract of every built-in policy, exercised against scriptable fake
// clusters.
#include <gtest/gtest.h>

#include "sdn/schedulers/deadline_slo.hpp"
#include "sdn/schedulers/hierarchical.hpp"
#include "sdn/schedulers/least_loaded.hpp"
#include "sdn/schedulers/proximity.hpp"
#include "sdn/schedulers/round_robin.hpp"
#include "sdn/schedulers/utilization_balancing.hpp"
#include "test_util.hpp"

namespace tedge::sdn {
namespace {

using testutil::FakeCluster;

struct SchedulerFixture : ::testing::Test {
    SchedulerFixture() {
        client = topo.add_host("client", net::Ipv4{10, 0, 1, 1});
        near_node = topo.add_host("near", net::Ipv4{10, 0, 0, 2}, 12);
        far_node = topo.add_host("far", net::Ipv4{10, 0, 0, 3}, 24);
        const auto sw = topo.add_switch("sw");
        topo.add_link(client, sw, sim::microseconds(100), sim::gbit_per_sec(1));
        topo.add_link(near_node, sw, sim::microseconds(100), sim::gbit_per_sec(10));
        topo.add_link(far_node, sw, sim::milliseconds(5), sim::gbit_per_sec(10));

        near = std::make_unique<FakeCluster>("near", near_node);
        far = std::make_unique<FakeCluster>("far", far_node);

        spec.name = "svc";
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 80;
        spec.target_port = 80;
        spec.containers.resize(1);
    }

    ScheduleContext context() {
        ScheduleContext ctx;
        ctx.client = client;
        ctx.spec = &spec;
        ctx.topo = &topo;
        for (auto* cluster : {near.get(), far.get()}) {
            ScheduleContext::ClusterState state;
            state.cluster = cluster;
            state.instances = cluster->instances(spec.name);
            state.has_image = cluster->image_cached;
            state.has_service = cluster->has_service(spec.name);
            ctx.states.push_back(std::move(state));
        }
        return ctx;
    }

    net::Topology topo;
    net::NodeId client, near_node, far_node;
    std::unique_ptr<FakeCluster> near;
    std::unique_ptr<FakeCluster> far;
    orchestrator::ServiceSpec spec;
};

// ---------------------------------------------------------------- registry

TEST(SchedulerRegistry, CreatesBuiltinsByName) {
    auto& registry = SchedulerRegistry::instance();
    for (const auto* name : {kProximityScheduler, kRoundRobinScheduler,
                             kLeastLoadedScheduler, kHierarchicalScheduler,
                             kCloudOnlyScheduler, kUtilizationBalancingScheduler,
                             kDeadlineSloScheduler}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        const auto scheduler = registry.create(name);
        ASSERT_NE(scheduler, nullptr);
        EXPECT_EQ(scheduler->name(), name);
    }
    EXPECT_THROW(registry.create("no-such-scheduler"), std::invalid_argument);
}

TEST(SchedulerRegistry, FactoryReceivesParams) {
    yamlite::Node params;
    params["wait"] = yamlite::Node{false};
    const auto scheduler =
        SchedulerRegistry::instance().create(kProximityScheduler, params);
    const auto* proximity = dynamic_cast<ProximityScheduler*>(scheduler.get());
    ASSERT_NE(proximity, nullptr);
    EXPECT_FALSE(proximity->waits());
}

// --------------------------------------------------------------- proximity

TEST_F(SchedulerFixture, ProximityPicksReadyInstanceInNearestCluster) {
    near->add_instance("svc", /*ready=*/true);
    ProximityScheduler scheduler(/*wait=*/true);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());
    ASSERT_TRUE(result.fast->instance);
    EXPECT_TRUE(result.fast->instance->ready);
    EXPECT_FALSE(result.best); // BEST empty iff equal to FAST
}

TEST_F(SchedulerFixture, ProximityWithWaitingDeploysNearby) {
    far->add_instance("svc", /*ready=*/true); // farther instance exists
    ProximityScheduler scheduler(/*wait=*/true);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get()); // wait for the optimal edge
    EXPECT_FALSE(result.fast->instance);
    EXPECT_FALSE(result.best);
}

TEST_F(SchedulerFixture, ProximityWithoutWaitingUsesFarInstanceAndDeploysNear) {
    far->add_instance("svc", /*ready=*/true);
    ProximityScheduler scheduler(/*wait=*/false);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get());
    ASSERT_TRUE(result.best);
    EXPECT_EQ(result.best->cluster, near.get());
}

TEST_F(SchedulerFixture, ProximityWithoutWaitingNoInstanceAnywhereGoesToCloud) {
    ProximityScheduler scheduler(/*wait=*/false);
    const auto result = scheduler.decide(context());
    EXPECT_FALSE(result.fast); // forward toward the cloud
    ASSERT_TRUE(result.best);  // but deploy nearby in the background
    EXPECT_EQ(result.best->cluster, near.get());
}

TEST_F(SchedulerFixture, ProximityWaitsOnStartingInstance) {
    near->add_instance("svc", /*ready=*/false); // scaling up right now
    ProximityScheduler scheduler(/*wait=*/false);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());
    EXPECT_FALSE(result.fast->instance);
    EXPECT_FALSE(result.best);
}

TEST_F(SchedulerFixture, ProximityEmptyContextGoesToCloud) {
    ProximityScheduler scheduler(true);
    ScheduleContext ctx;
    ctx.client = client;
    ctx.spec = &spec;
    ctx.topo = &topo;
    const auto result = scheduler.decide(ctx);
    EXPECT_FALSE(result.fast);
    EXPECT_FALSE(result.best);
}

// -------------------------------------------------------------- round robin

TEST_F(SchedulerFixture, RoundRobinRotatesDeployTargets) {
    RoundRobinScheduler scheduler;
    const auto first = scheduler.decide(context());
    const auto second = scheduler.decide(context());
    ASSERT_TRUE(first.fast);
    ASSERT_TRUE(second.fast);
    EXPECT_NE(first.fast->cluster, second.fast->cluster);
    const auto third = scheduler.decide(context());
    EXPECT_EQ(first.fast->cluster, third.fast->cluster);
}

TEST_F(SchedulerFixture, RoundRobinPrefersReadyInstanceForFast) {
    near->add_instance("svc", true);
    RoundRobinScheduler scheduler;
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());
    EXPECT_TRUE(result.fast->instance);
}

// -------------------------------------------------------------- least loaded

TEST_F(SchedulerFixture, LeastLoadedPicksEmptiestCluster) {
    near->add_instance("other1", true);
    near->add_instance("other2", true);
    // near has 2 instances, far has 0 -> far is least loaded.
    LeastLoadedScheduler scheduler;
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get());
    EXPECT_FALSE(result.best);
}

TEST_F(SchedulerFixture, LeastLoadedServesReadyAndRebalances) {
    near->add_instance("svc", true);
    near->add_instance("other", true);
    LeastLoadedScheduler scheduler;
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get()); // ready instance wins FAST
    ASSERT_TRUE(result.best);                    // but BEST goes to the empty far
    EXPECT_EQ(result.best->cluster, far.get());
}

// -------------------------------------------------------------- hierarchical

TEST_F(SchedulerFixture, HierarchicalPrefersCachedClusterWithinBonus) {
    far->image_cached = true; // the big cluster up the hierarchy has the image
    HierarchicalScheduler scheduler(/*cache_bonus_ms=*/10.0, /*wait=*/true);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get()); // cache beats 5 ms proximity
}

TEST_F(SchedulerFixture, HierarchicalIgnoresCacheBeyondBonus) {
    far->image_cached = true;
    HierarchicalScheduler scheduler(/*cache_bonus_ms=*/1.0, /*wait=*/true);
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get()); // 5 ms > 1 ms bonus
}

TEST_F(SchedulerFixture, HierarchicalWithoutWaitForwardsToCloudAndDeploysBest) {
    HierarchicalScheduler scheduler(/*cache_bonus_ms=*/5.0, /*wait=*/false);
    const auto result = scheduler.decide(context());
    EXPECT_FALSE(result.fast);
    ASSERT_TRUE(result.best);
    EXPECT_EQ(result.best->cluster, near.get());
}

// ----------------------------------------------------- utilization balancing

TEST_F(SchedulerFixture, UtilizationBalancingDeploysToLeastPressuredCluster) {
    UtilizationBalancingScheduler scheduler;
    auto ctx = context();
    ctx.states[0].utilization.capacity = {1000, 0}; // near: 90% cpu
    ctx.states[0].utilization.used = {900, 0};
    ctx.states[1].utilization.capacity = {1000, 0}; // far: 10% cpu
    ctx.states[1].utilization.used = {100, 0};
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get()); // worst fit: balance away
    EXPECT_FALSE(result.fast->instance);
}

TEST_F(SchedulerFixture, UtilizationBalancingSkipsNonAdmittedClusters) {
    UtilizationBalancingScheduler scheduler;
    auto ctx = context();
    // far is less pressured but full for this service; near must win.
    ctx.states[0].utilization.capacity = {1000, 0};
    ctx.states[0].utilization.used = {800, 0};
    ctx.states[1].admission = orchestrator::AdmissionReason::kInsufficientCpu;
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());

    // Nobody admits and nothing is ready: FAST empty -> the cloud serves.
    ctx.states[0].admission = orchestrator::AdmissionReason::kInsufficientMemory;
    const auto full = scheduler.decide(ctx);
    EXPECT_FALSE(full.fast);
}

TEST_F(SchedulerFixture, UtilizationBalancingCountsInflightDeployments) {
    UtilizationBalancingScheduler scheduler(/*inflight_weight=*/0.1);
    auto ctx = context();
    ctx.states[0].inflight_deploys = 3; // equal pressure, near busy deploying
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get());
}

TEST_F(SchedulerFixture, UtilizationBalancingServesReadyAndRebalances) {
    UtilizationBalancingScheduler scheduler;
    near->add_instance("svc", true);
    auto ctx = context();
    ctx.states[0].utilization.capacity = {1000, 0};
    ctx.states[0].utilization.used = {900, 0};
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get()); // ready instance serves now
    ASSERT_TRUE(result.best);                    // but future load moves away
    EXPECT_EQ(result.best->cluster, far.get());
}

// --------------------------------------------------------------- deadline/SLO

TEST_F(SchedulerFixture, DeadlineSloPrefersReadyInstanceWithinBudget) {
    near->add_instance("svc", true);
    DeadlineSloScheduler scheduler;
    const auto result = scheduler.decide(context());
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());
    ASSERT_TRUE(result.fast->instance);
    EXPECT_TRUE(result.fast->instance->ready);
}

TEST_F(SchedulerFixture, DeadlineSloPacksTightestFitWithinDeadline) {
    // Both cold and both meet a 10 s deadline; the pressured far cluster has
    // the *larger* completion estimate and is deliberately packed first,
    // keeping the fast near cluster free (flhofer-style slotting).
    DeadlineSloConfig config;
    config.deadline = sim::seconds(10);
    DeadlineSloScheduler scheduler(config);
    auto ctx = context();
    ctx.states[1].utilization.capacity = {1000, 0};
    ctx.states[1].utilization.used = {500, 0};
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, far.get());
}

TEST_F(SchedulerFixture, DeadlineSloMinimizesDamageWhenNothingFits) {
    // Default 100 ms deadline cannot absorb a 3 s cold start anywhere: fall
    // back to the smallest estimate (the near, unpressured cluster).
    DeadlineSloScheduler scheduler;
    auto ctx = context();
    ctx.states[1].utilization.capacity = {1000, 0};
    ctx.states[1].utilization.used = {500, 0};
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get());
}

TEST_F(SchedulerFixture, DeadlineSloSkipsNonAdmittedForColdStarts) {
    DeadlineSloConfig config;
    config.deadline = sim::seconds(10);
    DeadlineSloScheduler scheduler(config);
    auto ctx = context();
    ctx.states[1].admission = orchestrator::AdmissionReason::kInsufficientCpu;
    const auto result = scheduler.decide(ctx);
    ASSERT_TRUE(result.fast);
    EXPECT_EQ(result.fast->cluster, near.get()); // far cannot take the pod
}

// ---------------------------------------------------------------- cloud only

TEST_F(SchedulerFixture, CloudOnlyNeverRedirects) {
    const auto scheduler = SchedulerRegistry::instance().create(kCloudOnlyScheduler);
    near->add_instance("svc", true);
    const auto result = scheduler->decide(context());
    EXPECT_FALSE(result.fast);
    EXPECT_FALSE(result.best);
}

// ------------------------------------------------------ contract properties

class AllSchedulers : public SchedulerFixture,
                      public ::testing::WithParamInterface<const char*> {};

TEST_P(AllSchedulers, BestNeverEqualsFastCluster) {
    // Contract: BEST is "returned empty if equal to the FAST choice".
    const auto scheduler = SchedulerRegistry::instance().create(GetParam());
    for (int scenario = 0; scenario < 4; ++scenario) {
        near->instance_list.clear();
        far->instance_list.clear();
        if (scenario & 1) near->add_instance("svc", true);
        if (scenario & 2) far->add_instance("svc", true);
        const auto result = scheduler->decide(context());
        if (result.fast && result.best) {
            EXPECT_NE(result.fast->cluster, result.best->cluster)
                << GetParam() << " scenario " << scenario;
        }
        if (result.fast && result.fast->instance) {
            EXPECT_TRUE(result.fast->instance->ready);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Builtins, AllSchedulers,
                         ::testing::Values(kProximityScheduler, kRoundRobinScheduler,
                                           kLeastLoadedScheduler,
                                           kHierarchicalScheduler,
                                           kCloudOnlyScheduler,
                                           kUtilizationBalancingScheduler,
                                           kDeadlineSloScheduler));

} // namespace
} // namespace tedge::sdn
