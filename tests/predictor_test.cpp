// PredictiveDeployer tests: EWMA popularity scoring, top-K pre-deployment,
// and scale-down of decayed services.
#include <gtest/gtest.h>

#include "core/edge_platform.hpp"
#include "core/predictor.hpp"
#include "sdn/flow_memory.hpp"

namespace tedge::core {
namespace {

using sim::milliseconds;
using sim::seconds;

struct PredictorFixture : ::testing::Test {
    PredictorFixture() {
        edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
        platform.add_client("ue", net::Ipv4{10, 0, 1, 1});
        auto& hub = platform.add_registry({.host = "docker.io"});

        container::Image image;
        image.ref = *container::ImageRef::parse("web:1");
        image.layers = container::make_layers("web", sim::mib(5), 1);
        hub.put(image);

        container::AppProfile app;
        app.name = "web";
        app.init_median = milliseconds(10);
        app.port = 80;
        platform.add_app_profile("web:1", app);

        platform.add_docker_cluster("edge", edge);
        platform.start_controller(edge);

        for (int i = 0; i < 6; ++i) {
            net::ServiceAddress address{
                net::Ipv4{203, 0, 113, static_cast<std::uint8_t>(30 + i)}, 80};
            platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
            addresses.push_back(address);
        }

        PredictorConfig config;
        config.period = seconds(5);
        config.decay = 0.5;
        config.top_k = 2;
        config.min_score = 0.5;
        predictor = std::make_unique<PredictiveDeployer>(
            platform.simulation(), platform.deployment_engine(),
            *platform.cluster("edge"), platform.service_registry(), config);
    }

    std::string name_of(std::size_t index) {
        return platform.service_registry().lookup(addresses[index])->spec.name;
    }

    core::EdgePlatform platform;
    net::NodeId edge;
    std::vector<net::ServiceAddress> addresses;
    std::unique_ptr<PredictiveDeployer> predictor;
};

TEST_F(PredictorFixture, PreDeploysTopKByPopularity) {
    // Service 0 is hot, service 1 lukewarm, the rest cold.
    for (int i = 0; i < 10; ++i) predictor->observe(addresses[0]);
    for (int i = 0; i < 3; ++i) predictor->observe(addresses[1]);
    predictor->observe(addresses[2]);

    // Assert while the lukewarm service is still above min_score: with decay
    // 0.5 per 5 s period, service 1's score (3) crosses 0.5 at t=15 and the
    // predictor would legitimately scale it back down.
    platform.simulation().run_until(seconds(12));
    const auto deployed = predictor->predeployed();
    ASSERT_EQ(deployed.size(), 2u);
    EXPECT_EQ(predictor->deploys_triggered(), 2u);

    // The hot services have ready instances before any request hits them.
    EXPECT_FALSE(platform.cluster("edge")->ready_instances(name_of(0)).empty());
    EXPECT_FALSE(platform.cluster("edge")->ready_instances(name_of(1)).empty());
    EXPECT_TRUE(platform.cluster("edge")->ready_instances(name_of(3)).empty());
    EXPECT_GT(predictor->score(name_of(0)), predictor->score(name_of(1)));
}

TEST_F(PredictorFixture, ScoresDecayAndColdServicesAreScaledDown) {
    for (int i = 0; i < 8; ++i) predictor->observe(addresses[0]);
    platform.simulation().run_until(seconds(20));
    ASSERT_FALSE(platform.cluster("edge")->ready_instances(name_of(0)).empty());

    // No further traffic: score decays 0.5x per 5 s period; after ~30 s it
    // falls below min_score and the predictor scales the service down.
    platform.simulation().run_until(seconds(90));
    EXPECT_TRUE(predictor->predeployed().empty());
    EXPECT_GE(predictor->scale_downs_triggered(), 1u);
    EXPECT_TRUE(platform.cluster("edge")->ready_instances(name_of(0)).empty());
    EXPECT_LT(predictor->score(name_of(0)), 0.5);
}

TEST_F(PredictorFixture, UnregisteredAddressesAreIgnored) {
    predictor->observe({net::Ipv4{9, 9, 9, 9}, 80});
    platform.simulation().run_until(seconds(10));
    EXPECT_TRUE(predictor->predeployed().empty());
    EXPECT_EQ(predictor->deploys_triggered(), 0u);
}

TEST_F(PredictorFixture, HotSetFollowsShiftingPopularity) {
    for (int i = 0; i < 10; ++i) predictor->observe(addresses[0]);
    platform.simulation().run_until(seconds(15));
    ASSERT_FALSE(platform.cluster("edge")->ready_instances(name_of(0)).empty());

    // Popularity shifts to services 4 and 5, with arrivals spread across the
    // whole window so their EWMA scores stay above min_score through t=120
    // while the old favourite decays out.
    for (int round = 0; round < 12; ++round) {
        platform.simulation().schedule(seconds(round * 10), [this] {
            predictor->observe(addresses[4]);
            predictor->observe(addresses[4]);
            predictor->observe(addresses[5]);
            predictor->observe(addresses[5]);
        });
    }
    platform.simulation().run_until(seconds(120));
    const auto deployed = predictor->predeployed();
    EXPECT_FALSE(platform.cluster("edge")->ready_instances(name_of(4)).empty());
    EXPECT_FALSE(platform.cluster("edge")->ready_instances(name_of(5)).empty());
    // The old favourite decayed out.
    EXPECT_TRUE(platform.cluster("edge")->ready_instances(name_of(0)).empty());
}

TEST_F(PredictorFixture, CohortRateFeedsScoreWithoutDirectObservations) {
    // Demand that only exists as hybrid-fidelity fluid cohorts -- observe()
    // never fires for it -- must still drive the popularity score once a
    // FlowMemory is attached.
    sdn::FlowMemory::Config config;
    config.fidelity = sdn::Fidelity::kHybrid;
    sdn::FlowMemory memory(platform.simulation(), config);
    predictor->attach_flow_memory(memory);  // cohort key = target cluster name

    // 20 flows per 100 ms epoch = a steady 200 flows/s cohort rate EWMA.
    auto feeder = platform.simulation().schedule_periodic(
        milliseconds(100),
        [&] { memory.admit_fluid(name_of(0), "edge", edge, 80, 20); },
        /*daemon=*/true);
    platform.simulation().run_until(seconds(12));
    feeder.cancel();

    // rate_weight (1.0) * rate * period dwarfs min_score: the service is
    // ranked hot and pre-deployed purely off the cohort signal.
    EXPECT_GT(predictor->score(name_of(0)), 10.0);
    const auto deployed = predictor->predeployed();
    ASSERT_EQ(deployed.size(), 1u);
    EXPECT_EQ(deployed[0], name_of(0));
    EXPECT_FALSE(platform.cluster("edge")->ready_instances(name_of(0)).empty());
    // Services with no cohort and no observations stay cold.
    EXPECT_EQ(predictor->score(name_of(1)), 0.0);
}

TEST_F(PredictorFixture, PredictedServiceAnswersFirstRequestFast) {
    for (int i = 0; i < 10; ++i) predictor->observe(addresses[0]);
    // Probe while the score (10, halving every 5 s) is still above
    // min_score; by t=25 the predictor would have scaled the service down.
    platform.simulation().run_until(seconds(12));

    net::HttpResult result;
    bool done = false;
    platform.http_request(*platform.topology().find_by_name("ue"), addresses[0],
                          100, [&](const net::HttpResult& r) {
                              result = r;
                              done = true;
                          });
    platform.simulation().run_until(platform.simulation().now() + seconds(10));
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.ok) << result.error;
    // Proactively deployed: the "first" request is already a warm hit.
    EXPECT_LT(result.time_total, milliseconds(20));
}

} // namespace
} // namespace tedge::core
