// yamlite parser/emitter tests, including Kubernetes-style documents and
// round-trip properties.
#include <gtest/gtest.h>

#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace tedge::yamlite {
namespace {

TEST(Parser, ScalarsAndTypes) {
    const auto doc = parse("a: 1\nb: hello\nc: true\nd: null\ne: \"42\"\n");
    ASSERT_TRUE(doc.is_map());
    EXPECT_EQ(doc.find("a")->as_int(), 1);
    EXPECT_EQ(doc.find("b")->as_str(), "hello");
    EXPECT_EQ(doc.find("c")->as_bool(), true);
    EXPECT_TRUE(doc.find("d")->is_null());
    EXPECT_EQ(doc.find("e")->as_str(), "42");
    EXPECT_EQ(doc.find("e")->as_int(), 42); // typed access parses on demand
    EXPECT_EQ(doc.find("zz"), nullptr);
}

TEST(Parser, NestedMaps) {
    const auto doc = parse(R"(
metadata:
  name: demo
  labels:
    app: demo
    tier: web
spec:
  replicas: 3
)");
    EXPECT_EQ(doc.find_path("metadata.name")->as_str(), "demo");
    EXPECT_EQ(doc.find_path("metadata.labels.tier")->as_str(), "web");
    EXPECT_EQ(doc.find_path("spec.replicas")->as_int(), 3);
    EXPECT_EQ(doc.find_path("spec.missing.deep"), nullptr);
}

TEST(Parser, SequencesOfScalarsAndMaps) {
    const auto doc = parse(R"(
items:
  - one
  - two
containers:
  - name: nginx
    image: nginx:1.23.2
    ports:
      - containerPort: 80
  - name: sidecar
    image: busybox
)");
    const auto* items = doc.find("items");
    ASSERT_TRUE(items->is_seq());
    EXPECT_EQ(items->seq()[0].as_str(), "one");
    const auto* containers = doc.find("containers");
    ASSERT_TRUE(containers->is_seq());
    ASSERT_EQ(containers->size(), 2u);
    EXPECT_EQ(containers->seq()[0].find("image")->as_str(), "nginx:1.23.2");
    EXPECT_EQ(containers->seq()[0].find_path("ports")->seq()[0]
                  .find("containerPort")->as_int(),
              80);
    EXPECT_EQ(containers->seq()[1].find("name")->as_str(), "sidecar");
}

TEST(Parser, SequenceAlignedWithParentKey) {
    // YAML allows the dash at the same indent as the key.
    const auto doc = parse("ports:\n- 80\n- 443\nname: x\n");
    ASSERT_TRUE(doc.find("ports")->is_seq());
    EXPECT_EQ(doc.find("ports")->size(), 2u);
    EXPECT_EQ(doc.find("name")->as_str(), "x");
}

TEST(Parser, CommentsAndBlankLines) {
    const auto doc = parse(R"(
# leading comment
a: 1  # trailing comment

b: "text # not a comment"
)");
    EXPECT_EQ(doc.find("a")->as_int(), 1);
    EXPECT_EQ(doc.find("b")->as_str(), "text # not a comment");
}

TEST(Parser, QuotedScalarsWithEscapes) {
    const auto doc = parse("a: \"line\\nbreak\"\nb: 'single \"quoted\"'\n");
    EXPECT_EQ(doc.find("a")->as_str(), "line\nbreak");
    EXPECT_EQ(doc.find("b")->as_str(), "single \"quoted\"");
}

TEST(Parser, FlowCollections) {
    const auto doc = parse("args: [--port=80, \"--foo, bar\"]\nempty: []\nmap: {a: 1, b: x}\nnone: {}\n");
    const auto* args = doc.find("args");
    ASSERT_TRUE(args->is_seq());
    EXPECT_EQ(args->seq()[0].as_str(), "--port=80");
    EXPECT_EQ(args->seq()[1].as_str(), "--foo, bar");
    EXPECT_TRUE(doc.find("empty")->is_seq());
    EXPECT_EQ(doc.find("empty")->size(), 0u);
    EXPECT_EQ(doc.find_path("map.a")->as_int(), 1);
    EXPECT_TRUE(doc.find("none")->is_map());
    EXPECT_EQ(doc.find("none")->size(), 0u);
}

TEST(Parser, MultiDocumentStream) {
    const auto docs = parse_all("kind: Deployment\n---\nkind: Service\n---\n");
    ASSERT_EQ(docs.size(), 2u);
    EXPECT_EQ(docs[0].find("kind")->as_str(), "Deployment");
    EXPECT_EQ(docs[1].find("kind")->as_str(), "Service");
}

TEST(Parser, EmptyInputIsNull) {
    EXPECT_TRUE(parse("").is_null());
    EXPECT_TRUE(parse("# only a comment\n").is_null());
    EXPECT_TRUE(parse_all("").empty());
}

class BadYaml : public ::testing::TestWithParam<const char*> {};

TEST_P(BadYaml, ParseThrows) {
    EXPECT_THROW(parse(GetParam()), ParseError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cases, BadYaml,
                         ::testing::Values("a: [1, 2\n",          // unterminated flow
                                           "a: \"unterminated\n", // unterminated quote
                                           "\ta: 1\n",            // tab indent
                                           "a: 1\n  b: 2\n",      // bad indent
                                           "just a scalar line\n" // no key
                                           ));

TEST(Parser, K8sDeploymentDocument) {
    const auto doc = parse(R"(
apiVersion: apps/v1
kind: Deployment
metadata:
  name: edge-svc
spec:
  replicas: 0
  selector:
    matchLabels:
      app: edge-svc
  template:
    metadata:
      labels:
        app: edge-svc
    spec:
      schedulerName: local-sched
      volumes:
        - name: html
          hostPath:
            path: /srv/html
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          volumeMounts:
            - name: html
              mountPath: /usr/share/nginx/html
          env:
            - name: MODE
              value: "edge"
)");
    EXPECT_EQ(doc.find_path("spec.template.spec.schedulerName")->as_str(),
              "local-sched");
    const auto* containers = doc.find_path("spec.template.spec.containers");
    ASSERT_NE(containers, nullptr);
    const auto& nginx = containers->seq()[0];
    EXPECT_EQ(nginx.find_path("env")->seq()[0].find("value")->as_str(), "edge");
    EXPECT_EQ(doc.find_path("spec.replicas")->as_int(), 0);
}

TEST(Emitter, RoundTripPreservesStructure) {
    const std::string text = R"(
apiVersion: v1
kind: Service
metadata:
  name: svc
  labels:
    app: svc
spec:
  selector:
    edge.service: svc
  ports:
    - port: 80
      targetPort: 8080
      protocol: TCP
)";
    const auto doc = parse(text);
    const auto emitted = emit(doc);
    const auto reparsed = parse(emitted);
    EXPECT_EQ(doc, reparsed) << emitted;
    // Double round trip is a fixed point.
    EXPECT_EQ(emit(reparsed), emitted);
}

TEST(Emitter, QuotesWhereNeeded) {
    Node doc;
    doc["plain"] = Node{"hello"};
    doc["number_string"] = Node{"true"};
    doc["colon"] = Node{"a: b"};
    doc["hash"] = Node{"a # b"};
    doc["empty"] = Node{""};
    const auto reparsed = parse(emit(doc));
    EXPECT_EQ(reparsed.find("plain")->as_str(), "hello");
    EXPECT_EQ(reparsed.find("number_string")->as_str(), "true");
    EXPECT_EQ(reparsed.find("colon")->as_str(), "a: b");
    EXPECT_EQ(reparsed.find("hash")->as_str(), "a # b");
    EXPECT_EQ(reparsed.find("empty")->as_str(), "");
}

TEST(Emitter, MultiDocRoundTrip) {
    const auto docs = parse_all("kind: A\n---\nkind: B\nx:\n  - 1\n  - 2\n");
    const auto emitted = emit_all(docs);
    const auto reparsed = parse_all(emitted);
    ASSERT_EQ(reparsed.size(), 2u);
    EXPECT_EQ(docs[0], reparsed[0]);
    EXPECT_EQ(docs[1], reparsed[1]);
}

TEST(Node, MutationApi) {
    Node doc;
    doc["a"]["b"] = Node{1};
    doc["list"].push_back(Node{"x"});
    doc["list"].push_back(Node{"y"});
    EXPECT_EQ(doc.find_path("a.b")->as_int(), 1);
    EXPECT_EQ(doc.find("list")->size(), 2u);
    EXPECT_TRUE(doc.erase("a"));
    EXPECT_FALSE(doc.erase("a"));
    EXPECT_EQ(doc.find("a"), nullptr);
    // Type errors are loud.
    EXPECT_THROW(doc["list"]["key"], std::logic_error);
    EXPECT_THROW(static_cast<void>(doc.find("list")->map()), std::logic_error);
    EXPECT_THROW(static_cast<void>(Node{"scalar"}.seq()), std::logic_error);
}

TEST(Node, OrderIsPreserved) {
    Node doc;
    doc["z"] = Node{1};
    doc["a"] = Node{2};
    doc["m"] = Node{3};
    const auto& map = doc.map();
    EXPECT_EQ(map[0].first, "z");
    EXPECT_EQ(map[1].first, "a");
    EXPECT_EQ(map[2].first, "m");
    // Overwrite keeps position.
    doc["a"] = Node{9};
    EXPECT_EQ(doc.map()[1].first, "a");
    EXPECT_EQ(doc.map()[1].second.as_int(), 9);
}

} // namespace
} // namespace tedge::yamlite
