// ReplicaAutoscaler tests: flow-driven scale up, hysteresis-guarded scale
// down, and interaction with the controller's FlowMemory on the C3 testbed.
#include <gtest/gtest.h>

#include "core/autoscaler.hpp"
#include "testbed/c3.hpp"

namespace tedge::core {
namespace {

using sim::milliseconds;
using sim::seconds;

struct AutoscalerFixture : ::testing::Test {
    void SetUp() override {
        testbed::C3Options options;
        options.with_docker = false; // K8s supports multiple replicas
        options.controller.flow_memory.idle_timeout = seconds(40);
        options.controller.flow_memory.scan_period = seconds(5);
        options.controller.dispatcher.switch_idle_timeout = seconds(40);
        options.controller.scale_down_idle = false; // autoscaler owns scaling
        testbed = testbed::build_c3(options);
        testbed->register_table1_services();

        AutoscalerConfig config;
        config.period = seconds(10);
        config.flows_per_replica = 4;
        config.max_replicas = 3;
        config.scale_down_patience = 2;
        autoscaler = std::make_unique<ReplicaAutoscaler>(
            testbed->platform.simulation(), testbed->platform.deployment_engine(),
            *testbed->k8s, testbed->platform.controller().flow_memory(),
            testbed->platform.service_registry(), config);
    }

    /// Issue one request per distinct client (building distinct flows).
    void fan_in(const net::ServiceAddress& address, std::size_t clients) {
        auto& platform = testbed->platform;
        auto remaining = std::make_shared<std::size_t>(clients);
        for (std::size_t i = 0; i < clients; ++i) {
            platform.http_request(testbed->clients[i], address, 120,
                                  [remaining](const net::HttpResult& r) {
                                      ASSERT_TRUE(r.ok) << r.error;
                                      --*remaining;
                                  });
        }
        while (*remaining > 0) {
            platform.simulation().run_until(platform.simulation().now() +
                                            seconds(1));
        }
    }

    std::unique_ptr<testbed::C3Testbed> testbed;
    std::unique_ptr<ReplicaAutoscaler> autoscaler;
};

TEST_F(AutoscalerFixture, ScalesUpUnderManyFlows) {
    const auto& nginx = testbed::service_by_key("nginx");
    const auto* annotated =
        testbed->platform.service_registry().lookup(nginx.address);
    fan_in(nginx.address, 12); // 12 flows / 4 per replica -> target 3

    auto& sim = testbed->platform.simulation();
    // Keep the flows warm while the autoscaler reacts (one replica per
    // period).
    for (int round = 0; round < 4; ++round) {
        sim.run_until(sim.now() + seconds(10));
        fan_in(nginx.address, 12);
    }
    EXPECT_GE(autoscaler->scale_ups(), 2u);
    EXPECT_GE(autoscaler->current_replicas(annotated->spec.name), 2);
    EXPECT_LE(autoscaler->current_replicas(annotated->spec.name), 3);
}

TEST_F(AutoscalerFixture, ScalesBackDownAfterFlowsExpire) {
    const auto& nginx = testbed::service_by_key("nginx");
    const auto* annotated =
        testbed->platform.service_registry().lookup(nginx.address);
    fan_in(nginx.address, 12);
    auto& sim = testbed->platform.simulation();
    for (int round = 0; round < 3; ++round) {
        sim.run_until(sim.now() + seconds(10));
        fan_in(nginx.address, 12);
    }
    const int peak = autoscaler->current_replicas(annotated->spec.name);
    ASSERT_GE(peak, 2);

    // Silence: flows expire (40 s idle), the autoscaler waits out its
    // patience and sheds replicas one per period.
    sim.run_until(sim.now() + seconds(180));
    EXPECT_GE(autoscaler->scale_downs(), 1u);
    EXPECT_LT(autoscaler->current_replicas(annotated->spec.name), peak);
}

TEST_F(AutoscalerFixture, LeavesColdServicesAlone) {
    const auto& resnet = testbed::service_by_key("resnet");
    const auto* annotated =
        testbed->platform.service_registry().lookup(resnet.address);
    testbed->platform.simulation().run_until(seconds(60));
    EXPECT_EQ(autoscaler->current_replicas(annotated->spec.name), 0);
    EXPECT_EQ(autoscaler->scale_ups(), 0u);
    EXPECT_EQ(autoscaler->scale_downs(), 0u);
}

TEST_F(AutoscalerFixture, FewFlowsKeepOneReplica) {
    const auto& asm_svc = testbed::service_by_key("asm");
    const auto* annotated =
        testbed->platform.service_registry().lookup(asm_svc.address);
    fan_in(asm_svc.address, 2); // well under flows_per_replica
    auto& sim = testbed->platform.simulation();
    for (int round = 0; round < 3; ++round) {
        sim.run_until(sim.now() + seconds(10));
        fan_in(asm_svc.address, 2);
    }
    EXPECT_EQ(autoscaler->current_replicas(annotated->spec.name), 1);
    EXPECT_EQ(autoscaler->scale_ups(), 0u);
}

} // namespace
} // namespace tedge::core
