// DeploymentEngine + PortProber tests: three-phase execution, phase
// skipping, coalescing, failure handling, and probe timing -- against fake
// clusters and a tiny real network for the prober.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/port_prober.hpp"
#include "test_util.hpp"

namespace tedge::core {
namespace {

using sim::milliseconds;
using sim::seconds;
using testutil::FakeCluster;

struct EngineFixture : ::testing::Test {
    EngineFixture() {
        client = topo.add_host("ctl", net::Ipv4{10, 0, 0, 4});
        edge = topo.add_host("edge", net::Ipv4{10, 0, 0, 2});
        const auto sw = topo.add_switch("sw");
        topo.add_link(client, sw, sim::microseconds(100), sim::gbit_per_sec(1));
        topo.add_link(edge, sw, sim::microseconds(100), sim::gbit_per_sec(10));
        ovs = std::make_unique<net::OvsSwitch>(simulation, topo, sw);
        net = std::make_unique<net::TcpNet>(simulation, topo, *ovs, endpoints);
        prober = std::make_unique<PortProber>(*net, client,
                                              PortProberConfig{milliseconds(25),
                                                               seconds(5)});
        engine = std::make_unique<DeploymentEngine>(simulation, *prober);
        cluster = std::make_unique<FakeCluster>("edge", edge);
        spec.name = "svc";
        spec.cloud_address = {net::Ipv4{203, 0, 113, 1}, 80};
        spec.expose_port = 8080;
        spec.target_port = 80;
        spec.containers.resize(1);
    }

    /// Make the fake cluster "start" the instance: instance appears now,
    /// port opens after `ready_after`.
    void arm_instance(sim::SimTime ready_after) {
        cluster->add_instance(spec.name, false, 8080);
        simulation.schedule(ready_after, [this] {
            topo.open_port(edge, 8080);
            cluster->instance_list.front().ready = true;
        });
    }

    sim::Simulation simulation;
    net::Topology topo;
    net::EndpointDirectory endpoints;
    net::NodeId client, edge;
    std::unique_ptr<net::OvsSwitch> ovs;
    std::unique_ptr<net::TcpNet> net;
    std::unique_ptr<PortProber> prober;
    std::unique_ptr<DeploymentEngine> engine;
    std::unique_ptr<FakeCluster> cluster;
    orchestrator::ServiceSpec spec;
};

TEST_F(EngineFixture, RunsAllThreePhasesWhenNothingExists) {
    bool done = false;
    // The fake cluster "starts" the instance when scale_up is called; model
    // that by arming the instance at scale-up time.
    simulation.schedule(milliseconds(1), [this] { arm_instance(milliseconds(300)); });
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo& i) {
        EXPECT_TRUE(ok);
        EXPECT_EQ(i.node, edge);
        EXPECT_EQ(i.port, 8080);
        done = true;
    });
    simulation.run_until(seconds(30));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->pulls, 1);
    EXPECT_EQ(cluster->creates, 1);
    EXPECT_EQ(cluster->scale_ups, 1);
    ASSERT_EQ(engine->records().size(), 1u);
    const auto& record = engine->records().front();
    EXPECT_TRUE(record.ok);
    EXPECT_TRUE(record.phases.pulled);
    EXPECT_TRUE(record.phases.created);
    EXPECT_TRUE(record.phases.scaled);
    EXPECT_GE(record.phases.wait_ready, milliseconds(250));
}

TEST_F(EngineFixture, SkipsPullWhenImageCached) {
    cluster->image_cached = true;
    arm_instance(milliseconds(50));
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo&) {
        EXPECT_TRUE(ok);
        done = true;
    });
    simulation.run_until(seconds(30));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->pulls, 0);
    EXPECT_FALSE(engine->records().front().phases.pulled);
}

TEST_F(EngineFixture, SkipsCreateWhenServiceExists) {
    cluster->image_cached = true;
    cluster->created_services.push_back("svc");
    arm_instance(milliseconds(50));
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo&) {
        EXPECT_TRUE(ok);
        done = true;
    });
    simulation.run_until(seconds(30));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->creates, 0);
    EXPECT_FALSE(engine->records().front().phases.created);
}

TEST_F(EngineFixture, ReadyInstanceReturnsImmediatelyWithoutRecord) {
    cluster->add_instance(spec.name, true, 8080);
    topo.open_port(edge, 8080);
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo& i) {
        EXPECT_TRUE(ok);
        EXPECT_TRUE(i.ready);
        done = true;
    });
    simulation.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->scale_ups, 0);
    EXPECT_TRUE(engine->records().empty());
}

TEST_F(EngineFixture, StartingInstanceSkipsScaleUpCommand) {
    cluster->image_cached = true;
    cluster->created_services.push_back("svc");
    arm_instance(milliseconds(200)); // already starting (not ready yet)
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo&) {
        EXPECT_TRUE(ok);
        done = true;
    });
    simulation.run_until(seconds(30));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->scale_ups, 0); // joined the in-flight start
    EXPECT_FALSE(engine->records().front().phases.scaled);
}

TEST_F(EngineFixture, ConcurrentEnsuresCoalesce) {
    simulation.schedule(milliseconds(1), [this] { arm_instance(milliseconds(100)); });
    int completions = 0;
    for (int i = 0; i < 5; ++i) {
        engine->ensure(*cluster, spec, {},
                       [&](bool ok, const orchestrator::InstanceInfo&) {
                           EXPECT_TRUE(ok);
                           ++completions;
                       });
    }
    EXPECT_EQ(engine->inflight(), 1u);
    simulation.run_until(seconds(30));
    EXPECT_EQ(completions, 5);
    EXPECT_EQ(cluster->pulls, 1);      // one shared deployment
    EXPECT_EQ(cluster->scale_ups, 1);
    EXPECT_EQ(engine->records().size(), 1u);
}

TEST_F(EngineFixture, PullFailureAborts) {
    cluster->fail_pull = true;
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo&) {
        EXPECT_FALSE(ok);
        done = true;
    });
    simulation.run_until(seconds(10));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->creates, 0);
    EXPECT_FALSE(engine->records().front().ok);
}

TEST_F(EngineFixture, CreateFailureAborts) {
    cluster->image_cached = true;
    cluster->fail_create = true;
    bool done = false;
    engine->ensure(*cluster, spec, {}, [&](bool ok, const orchestrator::InstanceInfo&) {
        EXPECT_FALSE(ok);
        done = true;
    });
    simulation.run_until(seconds(10));
    ASSERT_TRUE(done);
    EXPECT_EQ(cluster->scale_ups, 0);
}

TEST_F(EngineFixture, NoWaitOptionSkipsProbe) {
    cluster->image_cached = true;
    arm_instance(seconds(2)); // port opens late
    DeployOptions options;
    options.wait_ready = false;
    bool done = false;
    sim::SimTime finished;
    engine->ensure(*cluster, spec, options,
                   [&](bool ok, const orchestrator::InstanceInfo& i) {
                       EXPECT_TRUE(ok);
                       EXPECT_FALSE(i.ready); // reported as handed over, not ready
                       finished = simulation.now();
                       done = true;
                   });
    simulation.run_until(seconds(30));
    ASSERT_TRUE(done);
    EXPECT_LT(finished, seconds(1)); // did not wait for the port
}

TEST_F(EngineFixture, ScaleDownAndRemoveDelegate) {
    bool down = false;
    engine->scale_down(*cluster, "svc", [&](bool ok) { down = ok; });
    bool removed = false;
    engine->remove(*cluster, "svc", [&](bool ok) { removed = ok; });
    simulation.run();
    EXPECT_TRUE(down);
    EXPECT_TRUE(removed);
    EXPECT_EQ(cluster->scale_downs, 1);
    EXPECT_EQ(cluster->removes, 1);
}

// ------------------------------------------------------------- PortProber

TEST_F(EngineFixture, ProberWaitsUntilPortOpens) {
    simulation.schedule(milliseconds(400), [this] { topo.open_port(edge, 9000); });
    bool ok = false;
    sim::SimTime waited;
    prober->wait_ready(edge, 9000, [&](bool success, sim::SimTime w) {
        ok = success;
        waited = w;
    });
    simulation.run_until(seconds(10));
    EXPECT_TRUE(ok);
    EXPECT_GE(waited, milliseconds(400));
    EXPECT_LT(waited, milliseconds(500)); // a few probe periods at most
    EXPECT_GE(prober->probes_sent(), 2u);
}

TEST_F(EngineFixture, ProberGivesUpAfterTimeout) {
    bool called = false;
    prober->wait_ready(edge, 9001, [&](bool success, sim::SimTime waited) {
        EXPECT_FALSE(success);
        EXPECT_GE(waited, seconds(5));
        called = true;
    });
    simulation.run_until(seconds(30));
    EXPECT_TRUE(called);
}

TEST_F(EngineFixture, ProberClampsFinalSleepToDeadline) {
    // The timeout (30 ms) is not a multiple of the interval (25 ms): the
    // sleep before the final probe must be clamped to the 5 ms remainder so
    // the give-up lands within one probe RTT of the deadline -- not a whole
    // interval + RTT past it.
    PortProber tight(*net, client,
                     PortProberConfig{milliseconds(25), milliseconds(30)});
    bool called = false;
    sim::SimTime waited, gave_up_at;
    tight.wait_ready(edge, 9003, [&](bool success, sim::SimTime w) {
        EXPECT_FALSE(success);
        waited = w;
        gave_up_at = simulation.now();
        called = true;
    });
    simulation.run_until(seconds(1));
    ASSERT_TRUE(called);
    EXPECT_EQ(waited, milliseconds(30));     // reported wait capped at budget
    EXPECT_LT(gave_up_at, milliseconds(32)); // deadline + one probe RTT
    EXPECT_EQ(tight.timeouts(), 1u);
}

TEST_F(EngineFixture, ProberImmediateSuccessOnOpenPort) {
    topo.open_port(edge, 9002, net::Proto::kTcp);
    bool ok = false;
    sim::SimTime waited;
    prober->wait_ready(edge, 9002, [&](bool success, sim::SimTime w) {
        ok = success;
        waited = w;
    });
    simulation.run();
    EXPECT_TRUE(ok);
    EXPECT_LT(waited, milliseconds(1)); // one probe RTT only
}

} // namespace
} // namespace tedge::core
