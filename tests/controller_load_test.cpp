// Controller-under-load tests: packet-in storms from many clients, switch
// flow expiry behaviour with the controller attached, and bookkeeping
// consistency after hundreds of requests.
#include <gtest/gtest.h>

#include "testbed/c3.hpp"
#include "workload/bigflows.hpp"
#include "workload/runner.hpp"

namespace tedge {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(ControllerLoad, BurstOfClientsSharesOneDeploymentPerService) {
    testbed::C3Options options;
    options.with_k8s = false;
    // The final assertions count switch entries and remembered flows at
    // t=120s; keep both idle timeouts beyond the window so nothing expires
    // mid-assertion (defaults are 60 s / 30 s).
    options.controller.flow_memory.idle_timeout = seconds(900);
    options.controller.dispatcher.switch_idle_timeout = seconds(900);
    options.controller.scale_down_idle = false;
    auto testbed = testbed::build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    // All 20 clients hit both web services at t=0.
    const auto& asm_svc = testbed::service_by_key("asm");
    const auto& nginx = testbed::service_by_key("nginx");
    int completed = 0;
    for (const auto client : testbed->clients) {
        for (const auto* service : {&asm_svc, &nginx}) {
            platform.http_request(client, service->address, 120,
                                  [&](const net::HttpResult& r) {
                                      ASSERT_TRUE(r.ok) << r.error;
                                      ++completed;
                                  });
        }
    }
    platform.simulation().run_until(seconds(120));
    EXPECT_EQ(completed, 40);
    // 40 packet-ins, but exactly 2 deployments (engine coalescing).
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins, 40u);
    EXPECT_EQ(platform.deployment_engine().records().size(), 2u);
    // One switch entry per (client, service) pair.
    EXPECT_EQ(platform.ingress().table().size(), 40u);
    EXPECT_EQ(platform.controller().flow_memory().size(), 40u);
}

TEST(ControllerLoad, TraceReplayBookkeepingIsConsistent) {
    testbed::C3Options options;
    options.with_k8s = false;
    options.controller.flow_memory.idle_timeout = seconds(900);
    options.controller.dispatcher.switch_idle_timeout = seconds(900);
    options.controller.scale_down_idle = false;
    auto testbed = testbed::build_c3(options);
    auto& platform = testbed->platform;

    const auto& service = testbed::service_by_key("asm");
    std::vector<net::ServiceAddress> addresses;
    for (std::uint32_t i = 0; i < 10; ++i) {
        net::ServiceAddress address{
            net::Ipv4{static_cast<std::uint32_t>(net::Ipv4{203, 0, 124, 10}.value() + i)},
            service.address.port};
        platform.register_service(address, service.yaml);
        addresses.push_back(address);
    }

    workload::BigFlowsOptions trace_options;
    trace_options.services = 10;
    trace_options.requests = 400;
    trace_options.horizon = seconds(120);
    trace_options.clients = 20;
    trace_options.seed = 2;
    const auto trace = workload::synthesize_bigflows(trace_options);

    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {service.request_size};
    auto& metrics = runner.replay(trace, replay);

    // Every request completed and succeeded.
    EXPECT_EQ(metrics.count(), trace.size());
    EXPECT_EQ(metrics.failures(), 0u);
    // Deployments: exactly one per service (nothing expired mid-run).
    EXPECT_EQ(platform.deployment_engine().records().size(), 10u);
    for (const auto& record : platform.deployment_engine().records()) {
        EXPECT_TRUE(record.ok);
    }
    // Controller accounting: every packet-in was either a memory hit, a
    // ready redirect, a waiting deployment, a cloud fallback, or
    // unregistered.
    const auto& stats = platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.packet_ins,
              stats.memory_hits + stats.redirected_ready + stats.deployed_waiting +
                  stats.cloud_fallbacks + stats.unregistered);
    EXPECT_EQ(stats.unregistered, 0u);
    EXPECT_EQ(stats.cloud_fallbacks, 0u);
    // No lingering in-flight work.
    EXPECT_EQ(platform.deployment_engine().inflight(), 0u);
    EXPECT_EQ(platform.ingress().buffered_packets(), 0u);
}

TEST(ControllerLoad, ShortSwitchTimeoutsKeepTablesSmall) {
    testbed::C3Options options;
    options.with_k8s = false;
    options.controller.dispatcher.switch_idle_timeout = seconds(2);
    options.controller.flow_memory.idle_timeout = seconds(900);
    options.controller.scale_down_idle = false;
    auto testbed = testbed::build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();
    const auto& asm_svc = testbed::service_by_key("asm");

    // Ten clients, one request each, spaced 3 s apart: every flow expires
    // before the next arrives.
    int completed = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        platform.simulation().schedule(seconds(static_cast<std::int64_t>(3 * i)),
                                       [&, i] {
            platform.http_request(testbed->clients[i], asm_svc.address, 120,
                                  [&](const net::HttpResult& r) {
                                      ASSERT_TRUE(r.ok) << r.error;
                                      ++completed;
                                  });
        });
    }
    platform.simulation().run_until(seconds(60));
    EXPECT_EQ(completed, 10);
    // The switch table stayed small the whole time; FlowMemory carries the
    // knowledge instead (paper §V).
    platform.ingress().table().expire(platform.simulation().now());
    EXPECT_LE(platform.ingress().table().size(), 1u);
    EXPECT_EQ(platform.controller().flow_memory().size(), 10u);
    EXPECT_EQ(platform.deployment_engine().records().size(), 1u);
}

} // namespace
} // namespace tedge
