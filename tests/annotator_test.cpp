// Annotator tests: the paper's automatic annotation of service definition
// files (§V) -- unique names, labels, scale-to-zero, schedulerName, and the
// generated Kubernetes Service.
#include <gtest/gtest.h>

#include "sdn/annotator.hpp"
#include "sdn/service_registry.hpp"
#include "yamlite/parser.hpp"

namespace tedge::sdn {
namespace {

const container::AppProfile kProfile{.name = "web",
                                     .init_median = sim::milliseconds(10),
                                     .init_sigma = 0.1,
                                     .service_median = sim::microseconds(100),
                                     .service_sigma = 0.1,
                                     .response_size = 100,
                                     .concurrency = 4,
                                     .port = 80};

AppProfileResolver resolver() {
    return [](const container::ImageRef&) { return &kProfile; };
}

constexpr const char* kMinimalYaml = R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - image: nginx:1.23.2
          ports:
            - containerPort: 80
)";

const net::ServiceAddress kAddress{net::Ipv4{203, 0, 113, 5}, 80};

TEST(Annotator, AssignsUniqueWorldwideName) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(kMinimalYaml, kAddress);
    EXPECT_EQ(annotated.spec.name, "edge-203-0-113-5-80");
    EXPECT_EQ(annotated.deployment.find_path("metadata.name")->as_str(),
              annotated.spec.name);
    // Different addresses produce different names.
    const net::ServiceAddress other{net::Ipv4{203, 0, 113, 5}, 81};
    EXPECT_NE(annotator.unique_name(other), annotated.spec.name);
}

TEST(Annotator, AddsMatchLabelsAndEdgeServiceLabel) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(kMinimalYaml, kAddress);
    const auto& d = annotated.deployment;
    const std::string name = annotated.spec.name;
    EXPECT_EQ(d.find_path("spec.selector.matchLabels.app")->as_str(), name);
    // "edge.service" is a literal key containing a dot -- navigate manually.
    const auto* match_labels = d.find_path("spec.selector.matchLabels");
    ASSERT_NE(match_labels, nullptr);
    ASSERT_NE(match_labels->find("edge.service"), nullptr);
    EXPECT_EQ(match_labels->find("edge.service")->as_str(), name);
    const auto* pod_labels = d.find_path("spec.template.metadata.labels");
    ASSERT_NE(pod_labels, nullptr);
    ASSERT_NE(pod_labels->find("edge.service"), nullptr);
    EXPECT_EQ(pod_labels->find("edge.service")->as_str(), name);
    EXPECT_EQ(annotated.spec.labels.at("edge.service"), name);
}

TEST(Annotator, ScaleToZeroByDefault) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(kMinimalYaml, kAddress);
    EXPECT_EQ(annotated.deployment.find_path("spec.replicas")->as_int(), 0);
    EXPECT_EQ(annotated.spec.replicas, 0);
}

TEST(Annotator, SetsSchedulerNameWhenConfigured) {
    AnnotatorConfig config;
    config.local_scheduler = "my-local-sched";
    Annotator annotator(resolver(), config);
    const auto annotated = annotator.annotate(kMinimalYaml, kAddress);
    EXPECT_EQ(annotated.deployment.find_path("spec.template.spec.schedulerName")
                  ->as_str(),
              "my-local-sched");
    EXPECT_EQ(annotated.spec.scheduler_name, "my-local-sched");

    // Without configuration the key stays absent.
    Annotator plain(resolver());
    const auto unannotated = plain.annotate(kMinimalYaml, kAddress);
    EXPECT_EQ(unannotated.deployment.find_path("spec.template.spec.schedulerName"),
              nullptr);
}

TEST(Annotator, GeneratesServiceDefinitionUnlessProvided) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(kMinimalYaml, kAddress);
    const auto& s = annotated.service;
    EXPECT_EQ(s.find("kind")->as_str(), "Service");
    EXPECT_EQ(s.find_path("metadata.name")->as_str(), annotated.spec.name);
    const auto& port = s.find_path("spec.ports")->seq().front();
    EXPECT_EQ(port.find("port")->as_int(), 80);         // exposed = cloud port
    EXPECT_EQ(port.find("targetPort")->as_int(), 80);   // container port
    EXPECT_EQ(port.find("protocol")->as_str(), "TCP");  // TCP by default
    EXPECT_EQ(annotated.spec.expose_port, 80);
    EXPECT_EQ(annotated.spec.target_port, 80);
}

TEST(Annotator, RespectsDeveloperProvidedService) {
    const std::string yaml = std::string(kMinimalYaml) + R"(
---
kind: Service
spec:
  ports:
    - port: 9090
      targetPort: 8080
)";
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(yaml, kAddress);
    EXPECT_EQ(annotated.spec.expose_port, 9090);
    EXPECT_EQ(annotated.spec.target_port, 8080);
    // Name/labels are still normalized on the provided Service.
    EXPECT_EQ(annotated.service.find_path("metadata.name")->as_str(),
              annotated.spec.name);
}

TEST(Annotator, OnlyTheImageIsMandatory) {
    // Name omitted; derived from the repository.
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(R"(
spec:
  template:
    spec:
      containers:
        - image: nginx:1.23.2
          ports:
            - containerPort: 80
)",
                                              kAddress);
    EXPECT_EQ(annotated.spec.containers[0].name, "library-nginx");
    EXPECT_EQ(annotated.spec.containers[0].image.str(), "nginx:1.23.2");
    EXPECT_EQ(annotated.spec.containers[0].app, &kProfile);
}

TEST(Annotator, ParsesVolumesAndEnvForDocker) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      volumes:
        - name: html
          hostPath:
            path: /srv/html
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          volumeMounts:
            - name: html
              mountPath: /usr/share/nginx/html
          env:
            - name: MODE
              value: edge
)",
                                              kAddress);
    const auto& tmpl = annotated.spec.containers[0];
    ASSERT_EQ(tmpl.volumes.size(), 1u);
    EXPECT_EQ(tmpl.volumes[0].host_path, "/srv/html");
    EXPECT_EQ(tmpl.volumes[0].container_path, "/usr/share/nginx/html");
    EXPECT_EQ(tmpl.env.at("MODE"), "edge");
}

TEST(Annotator, MultiContainerServices) {
    Annotator annotator(resolver());
    const auto annotated = annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
        - name: writer
          image: busybox:latest
)",
                                              kAddress);
    ASSERT_EQ(annotated.spec.containers.size(), 2u);
    EXPECT_EQ(annotated.spec.containers[0].container_port, 80);
    EXPECT_EQ(annotated.spec.containers[1].container_port, 0);
    EXPECT_EQ(annotated.spec.target_port, 80); // first container port wins
}

TEST(Annotator, AnnotationIsIdempotent) {
    Annotator annotator(resolver());
    const auto first = annotator.annotate(kMinimalYaml, kAddress);
    const auto second = annotator.annotate(first.yaml(), kAddress);
    EXPECT_EQ(first.spec.name, second.spec.name);
    EXPECT_EQ(first.spec.expose_port, second.spec.expose_port);
    EXPECT_EQ(first.spec.target_port, second.spec.target_port);
    EXPECT_EQ(first.deployment, second.deployment);
    EXPECT_EQ(first.service, second.service);
}

TEST(Annotator, ErrorCases) {
    Annotator annotator(resolver());
    EXPECT_THROW(annotator.annotate("", kAddress), std::invalid_argument);
    EXPECT_THROW(annotator.annotate("kind: Service\nspec: {}\n", kAddress),
                 std::invalid_argument);
    EXPECT_THROW(annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: noimage
)",
                                    kAddress),
                 std::invalid_argument);
    EXPECT_THROW(annotator.annotate(R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - image: ":::"
)",
                                    kAddress),
                 std::invalid_argument);
}

TEST(ServiceRegistry, RegisterLookupUnregister) {
    Annotator annotator(resolver());
    ServiceRegistry registry;
    const auto& registered = registry.register_yaml(kAddress, kMinimalYaml, annotator);
    EXPECT_TRUE(registry.contains(kAddress));
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.lookup(kAddress)->spec.name, registered.spec.name);
    EXPECT_NE(registry.find_by_name(registered.spec.name), nullptr);
    EXPECT_EQ(registry.find_by_name("nope"), nullptr);
    EXPECT_EQ(registry.lookup({net::Ipv4{1, 1, 1, 1}, 80}), nullptr);
    EXPECT_EQ(registry.addresses().size(), 1u);
    EXPECT_TRUE(registry.unregister(kAddress));
    EXPECT_FALSE(registry.unregister(kAddress));
    EXPECT_EQ(registry.size(), 0u);
}

} // namespace
} // namespace tedge::sdn
