// EdgePlatform facade tests: topology building, cloud provisioning,
// registries, cluster management, and error paths.
#include <gtest/gtest.h>

#include "core/edge_platform.hpp"

namespace tedge::core {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(EdgePlatform, BuildsIngressSwitchUpFront) {
    EdgePlatform platform;
    EXPECT_TRUE(platform.ingress_node().valid());
    EXPECT_EQ(platform.topology().node(platform.ingress_node()).kind,
              net::NodeKind::kSwitch);
}

TEST(EdgePlatform, ClientAndEdgeHostsAreLinkedToIngress) {
    EdgePlatform platform;
    const auto client = platform.add_client("c", net::Ipv4{10, 0, 1, 1});
    const auto edge = platform.add_edge_host("e", net::Ipv4{10, 0, 0, 2}, 8);
    const auto path = platform.topology().path(client, edge);
    ASSERT_TRUE(path);
    EXPECT_EQ(path->hops, 2); // via the switch
    EXPECT_EQ(platform.topology().node(edge).cpu_cores, 8u);
}

TEST(EdgePlatform, CloudCanOnlyBeAddedOnce) {
    EdgePlatform platform;
    platform.add_cloud();
    EXPECT_THROW(platform.add_cloud(), std::logic_error);
}

TEST(EdgePlatform, RegisterServiceProvisionsCloudInstance) {
    EdgePlatform platform;
    platform.add_client("c", net::Ipv4{10, 0, 1, 1});
    platform.add_cloud();
    platform.add_registry({.host = "docker.io"});

    container::AppProfile app;
    app.name = "web";
    app.service_median = milliseconds(1);
    app.response_size = 128;
    app.port = 80;
    platform.add_app_profile("web:1", app);

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 40}, 80};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");
    // The cloud answers for the registered address without any controller.
    EXPECT_EQ(platform.topology().find_by_ip(address.ip), platform.cloud_node());
    EXPECT_TRUE(platform.topology().port_open(platform.cloud_node(), address.port));

    net::HttpResult result;
    bool done = false;
    platform.http_request(*platform.topology().find_by_name("c"), address, 100,
                          [&](const net::HttpResult& r) {
                              result = r;
                              done = true;
                          });
    platform.simulation().run_until(seconds(10));
    ASSERT_TRUE(done);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, platform.cloud_node());
}

TEST(EdgePlatform, AppProfileCatalogResolvesByFullRef) {
    EdgePlatform platform;
    container::AppProfile app;
    app.name = "x";
    platform.add_app_profile("nginx:1.23.2", app);
    const auto ref = *container::ImageRef::parse("nginx:1.23.2");
    EXPECT_NE(platform.profile_for(ref), nullptr);
    const auto other = *container::ImageRef::parse("nginx:other");
    EXPECT_EQ(platform.profile_for(other), nullptr);
    EXPECT_THROW(platform.add_app_profile("", app), std::invalid_argument);
}

TEST(EdgePlatform, ClusterLookupByName) {
    EdgePlatform platform;
    const auto edge = platform.add_edge_host("e", net::Ipv4{10, 0, 0, 2}, 8);
    platform.add_docker_cluster("alpha", edge);
    platform.add_faas_cluster("beta", edge);
    EXPECT_NE(platform.cluster("alpha"), nullptr);
    EXPECT_NE(platform.cluster("beta"), nullptr);
    EXPECT_EQ(platform.cluster("gamma"), nullptr);
    EXPECT_EQ(platform.clusters().size(), 2u);
}

TEST(EdgePlatform, ControllerCanOnlyStartOnce) {
    EdgePlatform platform;
    const auto edge = platform.add_edge_host("e", net::Ipv4{10, 0, 0, 2}, 8);
    platform.add_docker_cluster("alpha", edge);
    platform.start_controller(edge);
    EXPECT_THROW(platform.start_controller(edge), std::logic_error);
}

TEST(EdgePlatform, RegistryMirrorRouting) {
    EdgePlatform platform;
    auto& hub = platform.add_registry({.host = "docker.io"});
    auto& mirror = platform.add_registry({.host = "registry.local"});
    const auto ref = *container::ImageRef::parse("nginx:1");
    EXPECT_EQ(platform.registries().resolve(ref), &hub);
    platform.registries().set_mirror(&mirror);
    EXPECT_EQ(platform.registries().resolve(ref), &mirror);
    platform.registries().set_mirror(nullptr);
    EXPECT_EQ(platform.registries().resolve(ref), &hub);
    const auto unknown = *container::ImageRef::parse("quay.io/foo/bar:1");
    EXPECT_EQ(platform.registries().resolve(unknown), nullptr);
}

} // namespace
} // namespace tedge::core
