// Workload tests: trace model, bigFlows synthesis marginals, request
// streams, metrics collection, and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "workload/bigflows.hpp"
#include "workload/metrics.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace tedge::workload {
namespace {

TEST(Trace, FinalizeSortsByTime) {
    Trace trace;
    trace.add({sim::seconds(5), 0, 1});
    trace.add({sim::seconds(1), 2, 0});
    trace.add({sim::seconds(3), 1, 2});
    trace.finalize();
    EXPECT_EQ(trace.events()[0].at, sim::seconds(1));
    EXPECT_EQ(trace.events()[2].at, sim::seconds(5));
    EXPECT_EQ(trace.service_count(), 3u);
    EXPECT_EQ(trace.client_count(), 3u);
    EXPECT_EQ(trace.horizon(), sim::seconds(5));
}

TEST(Trace, CsvRoundTrip) {
    Trace trace;
    trace.add({sim::milliseconds(1500), 3, 7});
    trace.add({sim::milliseconds(200), 1, 2});
    trace.finalize();
    const auto csv = trace.to_csv();
    EXPECT_NE(csv.find("time_ms,client,service"), std::string::npos);
    const auto parsed = Trace::from_csv(csv);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed.events()[0].at, sim::milliseconds(200));
    EXPECT_EQ(parsed.events()[0].client, 1u);
    EXPECT_EQ(parsed.events()[1].service, 7u);
}

TEST(Trace, FromCsvRejectsGarbage) {
    EXPECT_THROW(Trace::from_csv("time_ms,client,service\n1.0,2\n"),
                 std::invalid_argument);
}

TEST(Trace, EmptyTraceBehaviour) {
    Trace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.service_count(), 0u);
    EXPECT_EQ(trace.horizon(), sim::SimTime::zero());
    EXPECT_TRUE(trace.requests_per_service().empty());
}

// --------------------------------------------------------------- bigflows

class BigFlowsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigFlowsSweep, PublishedMarginalsHold) {
    BigFlowsOptions options;
    options.seed = GetParam();
    const auto trace = synthesize_bigflows(options);

    // Paper fig. 9: 1708 requests, 42 services, five minutes, >= 20 each.
    EXPECT_EQ(trace.size(), 1708u);
    EXPECT_EQ(trace.service_count(), 42u);
    EXPECT_LE(trace.horizon(), sim::seconds(300));
    const auto per_service = trace.requests_per_service();
    for (const auto count : per_service) EXPECT_GE(count, 20u);
    // Heavy-tailed: the most popular service clearly exceeds the floor.
    EXPECT_GE(*std::max_element(per_service.begin(), per_service.end()), 60u);
    // Clients are within range.
    EXPECT_LE(trace.client_count(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigFlowsSweep, ::testing::Values(1, 2, 3, 17, 42));

TEST(BigFlows, DeterministicPerSeed) {
    BigFlowsOptions options;
    options.seed = 9;
    const auto a = synthesize_bigflows(options);
    const auto b = synthesize_bigflows(options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].client, b.events()[i].client);
        EXPECT_EQ(a.events()[i].service, b.events()[i].service);
    }
}

TEST(BigFlows, DifferentSeedsDiffer) {
    BigFlowsOptions a_options;
    a_options.seed = 1;
    BigFlowsOptions b_options;
    b_options.seed = 2;
    const auto a = synthesize_bigflows(a_options);
    const auto b = synthesize_bigflows(b_options);
    bool any_difference = false;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        if (a.events()[i].at != b.events()[i].at) {
            any_difference = true;
            break;
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(BigFlows, RejectsImpossibleOptions) {
    BigFlowsOptions options;
    options.services = 42;
    options.requests = 100; // < 42 * 20
    EXPECT_THROW(synthesize_bigflows(options), std::invalid_argument);
    options.services = 0;
    EXPECT_THROW(synthesize_bigflows(options), std::invalid_argument);
}

TEST(BigFlows, CustomShapes) {
    BigFlowsOptions options;
    options.services = 5;
    options.requests = 200;
    options.horizon = sim::seconds(60);
    options.clients = 3;
    options.min_requests = 10;
    options.seed = 4;
    const auto trace = synthesize_bigflows(options);
    EXPECT_EQ(trace.size(), 200u);
    EXPECT_EQ(trace.service_count(), 5u);
    EXPECT_LE(trace.client_count(), 3u);
    EXPECT_LE(trace.horizon(), sim::seconds(60));
}

// ---------------------------------------------------------------- streams

TEST(RequestStream, BigFlowsStreamMatchesMaterializedTrace) {
    BigFlowsOptions options;
    options.seed = 7;
    const auto trace = synthesize_bigflows(options);
    BigFlowsStream stream(options);

    ASSERT_EQ(stream.total(), trace.size());
    ASSERT_EQ(stream.horizon(), trace.horizon());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto event = stream.next();
        ASSERT_TRUE(event.has_value()) << "stream ended early at " << i;
        EXPECT_EQ(event->at, trace.events()[i].at) << "index " << i;
        EXPECT_EQ(event->client, trace.events()[i].client) << "index " << i;
        EXPECT_EQ(event->service, trace.events()[i].service) << "index " << i;
    }
    EXPECT_FALSE(stream.next().has_value());
}

TEST(RequestStream, TraceViewStreamsEveryEventInOrder) {
    Trace trace;
    trace.add({sim::seconds(2), 1, 0});
    trace.add({sim::seconds(1), 0, 1});
    trace.finalize();
    TraceView view(trace);
    const auto first = view.next();
    const auto second = view.next();
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->at, sim::seconds(1));
    EXPECT_EQ(second->at, sim::seconds(2));
    EXPECT_FALSE(view.next().has_value());
    EXPECT_EQ(view.total(), trace.size());
    EXPECT_EQ(view.horizon(), trace.horizon());
}

TEST(RequestStream, PoissonStreamDeterministicOrderedAndBounded) {
    PoissonStream::Options options;
    options.services = 8;
    options.clients = 5;
    options.limit = 2000;
    options.seed = 11;

    PoissonStream a(options);
    PoissonStream b(options);
    sim::SimTime previous = sim::SimTime::zero();
    std::size_t emitted = 0;
    while (const auto event = a.next()) {
        const auto twin = b.next();
        ASSERT_TRUE(twin.has_value());
        EXPECT_EQ(event->at, twin->at);
        EXPECT_EQ(event->client, twin->client);
        EXPECT_EQ(event->service, twin->service);
        EXPECT_GE(event->at, previous); // nondecreasing merge
        EXPECT_LT(event->service, options.services);
        EXPECT_LT(event->client, options.clients);
        previous = event->at;
        ++emitted;
    }
    EXPECT_EQ(emitted, options.limit);
    EXPECT_FALSE(b.next().has_value());
}

TEST(RequestStream, PoissonStreamCoversAllServices) {
    PoissonStream::Options options;
    options.services = 4;
    options.limit = 1000;
    PoissonStream stream(options);
    std::vector<std::size_t> hits(options.services, 0);
    while (const auto event = stream.next()) ++hits[event->service];
    for (std::size_t s = 0; s < hits.size(); ++s) {
        EXPECT_GT(hits[s], 0u) << "service " << s << " never arrived";
    }
}

// ---------------------------------------------------------------- metrics

TEST(MetricsCollector, RecordsAndSeries) {
    MetricsCollector metrics;
    RequestRecord ok_record;
    ok_record.service = "svc0";
    ok_record.ok = true;
    ok_record.time_total = sim::milliseconds(10);
    metrics.add(ok_record);
    metrics.series("svc0").add_time(ok_record.time_total);

    RequestRecord failed;
    failed.service = "svc0";
    failed.ok = false;
    metrics.add(failed);

    EXPECT_EQ(metrics.count(), 2u);
    EXPECT_EQ(metrics.failures(), 1u);
    ASSERT_NE(metrics.find_series("svc0"), nullptr);
    EXPECT_DOUBLE_EQ(metrics.find_series("svc0")->median(), 10.0);
    EXPECT_EQ(metrics.find_series("nope"), nullptr);
    EXPECT_EQ(metrics.tags().size(), 1u);
    metrics.clear();
    EXPECT_EQ(metrics.count(), 0u);
}

TEST(TextTable, AlignsColumns) {
    TextTable table({"Name", "value"});
    table.add_row({"a", "1"});
    table.add_row({"longer-name", "123456"});
    table.add_row({"short"}); // missing cells padded
    const auto text = table.str();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("------"), std::string::npos);
    // Every line has the same length (fixed-width table).
    std::size_t first_line_len = text.find('\n');
    EXPECT_GT(first_line_len, 0u);
}

TEST(TextTable, NumFormatting) {
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(1000.0, 0), "1000");
}

} // namespace
} // namespace tedge::workload
