// FlowMemory tests: memorize/recall with idle timeouts, expiry scanning,
// and the idle-service callback that drives scale-down.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "sdn/flow_memory.hpp"
#include "simcore/random.hpp"

namespace tedge::sdn {
namespace {

using sim::seconds;

MemorizedFlow make_flow(const std::string& service, std::uint32_t client_octet,
                        const std::string& cluster = "edge") {
    MemorizedFlow flow;
    flow.client_ip = net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(client_octet)};
    flow.service_address = {net::Ipv4{203, 0, 113, 1}, 80};
    flow.service_name = service;
    flow.instance_node = net::NodeId{1};
    flow.instance_port = 8080;
    flow.cluster = cluster;
    return flow;
}

struct FlowMemoryFixture : ::testing::Test {
    FlowMemoryFixture()
        : memory(simulation, {.idle_timeout = seconds(60), .scan_period = seconds(5)}) {}

    sim::Simulation simulation;
    FlowMemory memory;
};

TEST_F(FlowMemoryFixture, RecallReturnsMemorizedFlow) {
    memory.memorize(make_flow("svc", 1));
    const auto recalled =
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80});
    ASSERT_TRUE(recalled);
    EXPECT_EQ(recalled->service_name, "svc");
    EXPECT_EQ(recalled->instance_port, 8080);
    EXPECT_EQ(memory.hits(), 1u);
}

TEST_F(FlowMemoryFixture, RecallMissesUnknownOrDifferentClient) {
    memory.memorize(make_flow("svc", 1));
    EXPECT_FALSE(
        memory.recall(net::Ipv4{10, 0, 1, 2}, {net::Ipv4{203, 0, 113, 1}, 80}));
    EXPECT_FALSE(
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 9}, 80}));
    EXPECT_EQ(memory.misses(), 2u);
}

TEST_F(FlowMemoryFixture, RecallTouchesIdleTimer) {
    memory.memorize(make_flow("svc", 1));
    // Touch at t=50s keeps it alive until 110s.
    simulation.run_until(seconds(50));
    EXPECT_TRUE(memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}));
    simulation.run_until(seconds(100));
    EXPECT_TRUE(memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}));
    simulation.run_until(seconds(170));
    EXPECT_FALSE(
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}));
}

TEST_F(FlowMemoryFixture, PeriodicScanExpiresStaleFlows) {
    memory.memorize(make_flow("svc", 1));
    EXPECT_EQ(memory.size(), 1u);
    simulation.run_until(seconds(70)); // the 5 s scans run automatically
    EXPECT_EQ(memory.size(), 0u);
}

TEST_F(FlowMemoryFixture, IdleCallbackFiresOncePerService) {
    std::vector<std::pair<std::string, std::string>> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string& cluster) {
            idle.emplace_back(service, cluster);
        });
    memory.memorize(make_flow("svc", 1));
    memory.memorize(make_flow("svc", 2));
    memory.memorize(make_flow("other", 3, "k8s"));
    simulation.run_until(seconds(100));
    ASSERT_EQ(idle.size(), 2u); // one per service despite two svc flows
    EXPECT_EQ(idle[0].second == "edge" ? idle[0].first : idle[1].first, "svc");
}

TEST_F(FlowMemoryFixture, IdleCallbackNotFiredWhileOtherFlowsAlive) {
    std::vector<std::string> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string&) {
            idle.push_back(service);
        });
    memory.memorize(make_flow("svc", 1));
    // Keep one flow of the same service alive by touching it regularly.
    auto keepalive = simulation.schedule_periodic(seconds(20), [&] {
        memory.memorize(make_flow("svc", 2));
    });
    simulation.run_until(seconds(100));
    EXPECT_TRUE(idle.empty());
    keepalive.cancel();
    simulation.run_until(seconds(200));
    EXPECT_EQ(idle.size(), 1u);
}

TEST_F(FlowMemoryFixture, IdleCallbackIsPerCluster) {
    // Regression: the same service deployed on two clusters. When the last
    // flow toward cluster "edge" expires while "k8s" still serves traffic,
    // the (svc, edge) idle notification MUST fire -- counting flows across
    // all clusters would suppress it and the edge instance would never be
    // scaled down.
    std::vector<std::pair<std::string, std::string>> idle;
    memory.set_idle_service_callback(
        [&](const std::string& service, const std::string& cluster) {
            idle.emplace_back(service, cluster);
        });
    memory.memorize(make_flow("svc", 1, "edge"));
    memory.memorize(make_flow("svc", 2, "k8s"));
    // Keep the k8s flow hot; the edge flow goes idle.
    auto keepalive = simulation.schedule_periodic(seconds(20), [&] {
        memory.memorize(make_flow("svc", 2, "k8s"));
    });
    simulation.run_until(seconds(100));
    keepalive.cancel();
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0].first, "svc");
    EXPECT_EQ(idle[0].second, "edge");
    EXPECT_EQ(memory.flows_for_service("svc", "edge"), 0u);
    EXPECT_EQ(memory.flows_for_service("svc", "k8s"), 1u);
    EXPECT_EQ(memory.flows_for_service("svc"), 1u);
}

TEST_F(FlowMemoryFixture, StaleRecallErasesEntrySoCreatedResets) {
    // Scan slower than the idle timeout so recall() observes the stale entry
    // before the periodic scan collects it.
    FlowMemory slow(simulation,
                    {.idle_timeout = seconds(60), .scan_period = seconds(1000)});
    slow.memorize(make_flow("svc", 1));
    simulation.run_until(seconds(70)); // 70 s idle > 60 s timeout: stale
    EXPECT_FALSE(
        slow.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}));
    // The stale entry is erased, not just reported as a miss...
    EXPECT_EQ(slow.size(), 0u);
    // ...so a fresh memorize() gets a fresh `created` stamp instead of
    // inheriting the dead flow's.
    slow.memorize(make_flow("svc", 1));
    const auto* entry =
        slow.peek(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80});
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->created, seconds(70));
}

TEST_F(FlowMemoryFixture, ForgetServiceDropsAllItsFlows) {
    memory.memorize(make_flow("svc", 1));
    memory.memorize(make_flow("svc", 2));
    memory.memorize(make_flow("other", 3));
    EXPECT_EQ(memory.flows_for_service("svc"), 2u);
    EXPECT_EQ(memory.forget_service("svc"), 2u);
    EXPECT_EQ(memory.flows_for_service("svc"), 0u);
    EXPECT_EQ(memory.size(), 1u);
}

TEST_F(FlowMemoryFixture, MemorizeRefreshesExistingEntry) {
    memory.memorize(make_flow("svc", 1));
    auto updated = make_flow("svc", 1);
    updated.instance_port = 9999;
    simulation.run_until(seconds(30));
    memory.memorize(updated);
    const auto recalled =
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80});
    ASSERT_TRUE(recalled);
    EXPECT_EQ(recalled->instance_port, 9999);
    EXPECT_EQ(memory.size(), 1u);
}

TEST_F(FlowMemoryFixture, PeekDoesNotTouch) {
    memory.memorize(make_flow("svc", 1));
    simulation.run_until(seconds(50));
    EXPECT_NE(memory.peek(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}),
              nullptr);
    simulation.run_until(seconds(70)); // 60 s after memorize: expired
    EXPECT_FALSE(
        memory.recall(net::Ipv4{10, 0, 1, 1}, {net::Ipv4{203, 0, 113, 1}, 80}));
}

TEST_F(FlowMemoryFixture, ForEachVisitsEveryLiveFlow) {
    memory.memorize(make_flow("svc", 1));
    memory.memorize(make_flow("other", 2, "k8s"));
    std::size_t visited = 0;
    memory.for_each([&](const MemorizedFlow& flow) {
        ++visited;
        EXPECT_TRUE(flow.service_name == "svc" || flow.service_name == "other");
    });
    EXPECT_EQ(visited, 2u);
}

TEST(FlowMemoryPropertyTest, CountersAgreeWithBruteForceRecount) {
    // Property test: under a randomized memorize / recall / expire / forget
    // sequence the O(1) per-service and per-(service, cluster) counters must
    // always agree with a brute-force recount of the actual live entries.
    sim::Simulation simulation;
    FlowMemory memory(simulation,
                      {.idle_timeout = sim::seconds(30), .scan_period = sim::seconds(7)});
    sim::Rng rng(42);

    const std::vector<std::string> services = {"alpha", "beta", "gamma", "delta"};
    const std::vector<std::string> clusters = {"edge", "k8s", "far-edge"};

    auto random_flow = [&] {
        MemorizedFlow flow;
        flow.client_ip = net::Ipv4{
            static_cast<std::uint32_t>(rng.uniform_int(1, 2000))};
        flow.service_address = {
            net::Ipv4{static_cast<std::uint32_t>(rng.uniform_int(1, 40))}, 80};
        flow.service_name =
            services[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        flow.cluster = clusters[static_cast<std::size_t>(rng.uniform_int(0, 2))];
        flow.instance_node = net::NodeId{1};
        flow.instance_port = 8080;
        return flow;
    };

    auto recount = [&] {
        std::map<std::string, std::size_t> by_service;
        std::map<std::pair<std::string, std::string>, std::size_t> by_pair;
        std::size_t total = 0;
        memory.for_each([&](const MemorizedFlow& flow) {
            ++by_service[flow.service_name];
            ++by_pair[{flow.service_name, flow.cluster}];
            ++total;
        });
        ASSERT_EQ(memory.size(), total);
        for (const auto& service : services) {
            EXPECT_EQ(memory.flows_for_service(service), by_service[service])
                << "service " << service;
            for (const auto& cluster : clusters) {
                EXPECT_EQ(memory.flows_for_service(service, cluster),
                          (by_pair[{service, cluster}]))
                    << service << "@" << cluster;
            }
        }
    };

    for (int step = 0; step < 3000; ++step) {
        const auto op = rng.uniform_int(0, 9);
        if (op < 6) {
            memory.memorize(random_flow());
        } else if (op < 8) {
            const auto probe = random_flow();
            (void)memory.recall(probe.client_ip, probe.service_address);
        } else if (op == 8) {
            memory.forget_service(
                services[static_cast<std::size_t>(rng.uniform_int(0, 3))]);
        } else {
            // Advance virtual time so the periodic scan expires stale flows.
            simulation.run_until(simulation.now() +
                                 sim::seconds(rng.uniform_int(1, 20)));
        }
        if (step % 100 == 0) recount();
    }
    recount();
}

} // namespace
} // namespace tedge::sdn
