// Failure-injection tests: registry outages, deployment failures, and the
// controller's cloud fallback under adverse conditions.
#include <gtest/gtest.h>

#include "testbed/c3.hpp"

namespace tedge {
namespace {

using sim::milliseconds;
using sim::seconds;

struct FailureFixture : ::testing::Test {
    void SetUp() override {
        testbed::C3Options options;
        options.with_k8s = false;
        options.controller.scale_down_idle = false;
        testbed = testbed::build_c3(options);
        testbed->register_table1_services();
    }

    net::HttpResult request_and_wait(const net::ServiceAddress& address) {
        auto& platform = testbed->platform;
        net::HttpResult result;
        bool done = false;
        platform.http_request(testbed->clients[0], address, 120,
                              [&](const net::HttpResult& r) {
                                  result = r;
                                  done = true;
                              });
        while (!done) {
            platform.simulation().run_until(platform.simulation().now() +
                                            seconds(1));
        }
        return result;
    }

    std::unique_ptr<testbed::C3Testbed> testbed;
};

TEST_F(FailureFixture, RegistryOutageFallsBackToCloud) {
    testbed->docker_hub->set_outage(true);
    const auto& nginx = testbed::service_by_key("nginx");

    const auto result = request_and_wait(nginx.address);
    // The pull fails, the deployment aborts, and the request is still
    // answered -- from the cloud.
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, testbed->platform.cloud_node());
    const auto& stats = testbed->platform.controller().dispatcher().stats();
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.cloud_fallbacks, 1u);
    const auto& records = testbed->platform.deployment_engine().records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_FALSE(records[0].ok);
}

TEST_F(FailureFixture, RecoveryAfterOutageDeploysNormally) {
    testbed->docker_hub->set_outage(true);
    const auto& nginx = testbed::service_by_key("nginx");
    request_and_wait(nginx.address); // fails to the cloud

    testbed->docker_hub->set_outage(false);
    const auto result = request_and_wait(nginx.address);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, testbed->egs_docker); // edge again
}

TEST_F(FailureFixture, PrivateMirrorSurvivesPublicRegistryOutage) {
    // With the pull-through mirror configured, a Docker Hub outage is
    // irrelevant -- exactly the operational case for an in-network registry.
    testbed::C3Options options;
    options.with_k8s = false;
    options.use_private_registry_mirror = true;
    options.controller.scale_down_idle = false;
    auto mirrored = testbed::build_c3(options);
    mirrored->register_table1_services();
    mirrored->docker_hub->set_outage(true);

    auto& platform = mirrored->platform;
    const auto& nginx = testbed::service_by_key("nginx");
    net::HttpResult result;
    bool done = false;
    platform.http_request(mirrored->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              result = r;
                              done = true;
                          });
    platform.simulation().run_until(seconds(60));
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.server_node, mirrored->egs_docker);
}

TEST_F(FailureFixture, UnknownImageDeploymentFailsToCloud) {
    // Register a service whose image no registry serves.
    auto& platform = testbed->platform;
    container::AppProfile app;
    app.name = "ghost";
    app.port = 80;
    platform.add_app_profile("ghost:1", app);
    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 77}, 80};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: ghost
          image: ghost:1
          ports:
            - containerPort: 80
)");
    const auto result = request_and_wait(address);
    ASSERT_TRUE(result.ok) << result.error; // cloud still answers
    EXPECT_EQ(result.server_node, platform.cloud_node());
    EXPECT_EQ(platform.controller().dispatcher().stats().failures, 1u);
}

TEST_F(FailureFixture, RepeatedFailuresDoNotWedgeTheDispatcher) {
    testbed->docker_hub->set_outage(true);
    const auto& asm_svc = testbed::service_by_key("asm");
    for (int i = 0; i < 3; ++i) {
        const auto result = request_and_wait(asm_svc.address);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.server_node, testbed->platform.cloud_node());
    }
    EXPECT_EQ(testbed->platform.deployment_engine().inflight(), 0u);
    testbed->docker_hub->set_outage(false);
    const auto result = request_and_wait(asm_svc.address);
    EXPECT_EQ(result.server_node, testbed->egs_docker);
}

} // namespace
} // namespace tedge
