// Writing a custom Global Scheduler and loading it by name from the
// controller configuration -- the C++ equivalent of the paper's dynamically
// loaded scheduler classes (§IV-B).
//
// The custom policy below always deploys at the cluster with the most CPU
// cores ("biggest-cluster-first"), regardless of proximity.
//
// Run:  ./build/examples/scheduler_plugin
#include <iostream>

#include "core/config.hpp"
#include "testbed/c3.hpp"

namespace {

class BiggestClusterScheduler final : public tedge::sdn::GlobalScheduler {
public:
    [[nodiscard]] const std::string& name() const override { return name_; }

    [[nodiscard]] tedge::sdn::ScheduleResult
    decide(const tedge::sdn::ScheduleContext& ctx) override {
        tedge::sdn::ScheduleResult result;
        const tedge::sdn::ScheduleContext::ClusterState* biggest = nullptr;
        std::uint32_t best_cores = 0;
        for (const auto& state : ctx.states) {
            const auto cores =
                ctx.topo->node(state.cluster->location()).cpu_cores;
            if (cores > best_cores) {
                best_cores = cores;
                biggest = &state;
            }
        }
        if (biggest == nullptr) return result;
        // Serve from a ready instance anywhere; otherwise wait on the
        // biggest cluster.
        for (const auto& state : ctx.states) {
            if (state.any_ready()) {
                result.fast = tedge::sdn::Choice{state.cluster, state.first_ready()};
                if (state.cluster != biggest->cluster && !biggest->any_ready()) {
                    result.best = tedge::sdn::Choice{biggest->cluster, std::nullopt};
                }
                return result;
            }
        }
        result.fast = tedge::sdn::Choice{biggest->cluster, std::nullopt};
        return result;
    }

private:
    std::string name_ = "biggest_cluster";
};

} // namespace

int main() {
    using namespace tedge;

    // 1. Register the plugin with the scheduler registry ("dynamic load").
    sdn::SchedulerRegistry::instance().register_factory(
        "biggest_cluster", [](const yamlite::Node&) {
            return std::make_unique<BiggestClusterScheduler>();
        });
    std::cout << "registered schedulers:";
    for (const auto& name : sdn::SchedulerRegistry::instance().names()) {
        std::cout << " " << name;
    }
    std::cout << "\n\n";

    // 2. Select it through the controller's YAML configuration.
    const auto controller_config = core::parse_controller_config(R"(
scheduler:
  name: biggest_cluster
flow_memory:
  idle_timeout_s: 120
dispatcher:
  switch_idle_timeout_s: 15
scale_down_idle: false
)");
    std::cout << "controller config round-trip:\n"
              << core::emit_controller_config(controller_config) << "\n";

    // 3. Run it on the C3 testbed with a far edge that has more cores.
    testbed::C3Options options;
    options.with_k8s = false;
    options.with_far_edge = true;  // 24 cores vs the EGS's 12
    options.controller = controller_config;
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    const auto& nginx = testbed::service_by_key("nginx");
    bool done = false;
    platform.http_request(testbed->clients[0], nginx.address, 120,
                          [&](const net::HttpResult& r) {
                              std::cout << "first request: "
                                        << (r.ok ? "OK" : r.error) << " in "
                                        << r.time_total.str() << " served by "
                                        << platform.topology()
                                               .node(r.server_node)
                                               .name
                                        << " (expected: far-edge, the biggest)\n";
                              done = true;
                          });
    platform.simulation().run_until(sim::seconds(120));
    return done ? 0 : 1;
}
