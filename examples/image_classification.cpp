// Image classification at the edge -- on-demand deployment WITHOUT waiting.
//
// The paper's motivating scenario (fig. 3): a bandwidth-hungry TensorFlow
// Serving (ResNet50) service should run in the nearest edge cluster, but no
// instance is running there yet. Because the model load makes deployment
// slow, the scheduler redirects the first requests to a *running* instance
// in an edge further away while the optimal edge deploys in parallel; once
// the new instance is up, traffic moves to the optimal location -- all
// transparent to the client.
//
// Run:  ./build/examples/image_classification
#include <iostream>

#include "testbed/c3.hpp"

int main() {
    using namespace tedge;

    testbed::C3Options options;
    options.with_k8s = false;
    options.with_far_edge = true;   // a bigger cluster, 4 ms further away
    options.controller.scheduler = sdn::kProximityScheduler;
    options.controller.scheduler_params["wait"] = yamlite::Node{false};
    options.controller.scale_down_idle = false;
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;
    testbed->register_table1_services();

    const auto& resnet = testbed::service_by_key("resnet");
    const auto* annotated = platform.service_registry().lookup(resnet.address);

    // The far edge cluster already runs the classifier (it is bigger and
    // much more likely to have popular services up, per the paper §IV-A2).
    bool warm = false;
    platform.deployment_engine().ensure(
        *testbed->far_edge, annotated->spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) { warm = ok; });
    platform.simulation().run_until(sim::seconds(120));
    if (!warm) {
        std::cerr << "far-edge warmup failed\n";
        return 1;
    }
    platform.deployment_engine().clear_records();
    std::cout << "far edge is warm; client starts classifying a cat picture "
                 "(83 KiB POST) every 2 s\n\n";

    const sim::SimTime t0 = platform.simulation().now();
    for (int i = 0; i < 10; ++i) {
        platform.simulation().schedule(sim::seconds(2 * i), [&, i] {
            platform.http_request(
                testbed->clients[0], resnet.address, resnet.request_size,
                [&, i](const net::HttpResult& r) {
                    const double at = (platform.simulation().now() - t0).seconds();
                    std::cout << "t=" << at << "s request " << i + 1 << ": "
                              << (r.ok ? "classified" : r.error) << " in "
                              << r.time_total.str() << " by "
                              << platform.topology().node(r.server_node).name << "\n";
                });
        });
    }
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(60));

    std::cout << "\nwhat happened: requests were served by the far edge while\n"
                 "the near edge pulled the 308 MiB image and loaded the model;\n"
                 "once ready, the controller invalidated the flows and traffic\n"
                 "moved to the near edge.\n\n";
    for (const auto& record : platform.deployment_engine().records()) {
        std::cout << "background deployment on " << record.cluster
                  << ": pull=" << record.phases.pull.str()
                  << " create=" << record.phases.create.str()
                  << " scale_up=" << record.phases.scale_up.str()
                  << " wait_ready=" << record.phases.wait_ready.str()
                  << " total=" << record.total().str() << "\n";
    }
    return 0;
}
