// Quickstart: the smallest complete transparent-edge deployment.
//
// Builds a platform with one edge host, a cloud, and a registry; registers
// an edge service by its cloud address and a plain Kubernetes-style YAML
// definition (only the image is mandatory); then sends the very first
// client request. The SDN controller intercepts it, deploys the service
// on demand in the edge cluster (on-demand deployment WITH waiting), and
// transparently redirects the request -- the client only sees a slightly
// slower first response.
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "core/edge_platform.hpp"

int main() {
    using namespace tedge;

    // --- 1. platform + topology ---------------------------------------
    core::EdgePlatform platform;
    const auto client = platform.add_client("phone", net::Ipv4{10, 0, 1, 10});
    const auto edge = platform.add_edge_host("edge-server", net::Ipv4{10, 0, 0, 2}, 12);
    platform.add_cloud();

    // --- 2. a registry serving our image --------------------------------
    auto& registry = platform.add_registry({.host = "docker.io"});
    container::Image image;
    image.ref = *container::ImageRef::parse("hello-edge:1.0");
    image.layers = container::make_layers("hello-edge", sim::mib(20), 3);
    registry.put(image);

    // Teach the platform how the app behaves (startup & request handling).
    container::AppProfile app;
    app.name = "hello-edge";
    app.init_median = sim::milliseconds(30);
    app.service_median = sim::microseconds(200);
    app.response_size = 512;
    app.port = 8080;
    platform.add_app_profile("hello-edge:1.0", app);

    // --- 3. an edge cluster on the edge host ----------------------------
    platform.add_docker_cluster("edge", edge);

    // --- 4. register the service under its *cloud* address -------------
    // Clients keep using this address; redirection stays transparent.
    const net::ServiceAddress cloud_address{net::Ipv4{203, 0, 113, 50}, 8080};
    const auto& service = platform.register_service(cloud_address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: hello
          image: hello-edge:1.0
          ports:
            - containerPort: 8080
)");
    std::cout << "registered service '" << service.spec.name << "' at "
              << cloud_address.str() << "\n";
    std::cout << "--- annotated definition ---\n" << service.yaml() << "\n";

    // --- 5. start the SDN controller ------------------------------------
    platform.start_controller(edge);

    // --- 6. first request: on-demand deployment with waiting ------------
    for (int i = 0; i < 3; ++i) {
        platform.simulation().schedule(sim::seconds(i), [&, i] {
            platform.http_request(client, cloud_address, 100,
                                  [i](const net::HttpResult& r) {
                std::cout << "request " << i + 1 << ": "
                          << (r.ok ? "OK" : r.error) << " in "
                          << r.time_total.str()
                          << " (served by node " << r.server_node.value << ")\n";
            });
        });
    }
    platform.simulation().run_until(sim::seconds(30));

    // --- 7. what happened behind the scenes -----------------------------
    for (const auto& record : platform.deployment_engine().records()) {
        std::cout << "\ndeployment of " << record.service << " on "
                  << record.cluster << ":\n"
                  << "  pull:       " << record.phases.pull.str()
                  << (record.phases.pulled ? "" : " (cached)") << "\n"
                  << "  create:     " << record.phases.create.str() << "\n"
                  << "  scale up:   " << record.phases.scale_up.str() << "\n"
                  << "  wait ready: " << record.phases.wait_ready.str() << "\n"
                  << "  total:      " << record.total().str() << "\n";
    }
    const auto& stats = platform.controller().dispatcher().stats();
    std::cout << "\ncontroller: " << stats.packet_ins << " packet-ins, "
              << stats.deployed_waiting << " on-demand deployment(s), "
              << stats.redirected_ready << " redirects to running instances\n";
    return 0;
}
