// Predictive pre-deployment + flow-driven autoscaling.
//
// Combines the two operational extensions around the paper's on-demand
// core: the EWMA predictor keeps popular services pre-deployed (so most
// "first" requests are warm hits), and the autoscaler adds/removes replicas
// as the number of live client flows changes. On-demand deployment remains
// the safety net for every prediction miss.
//
// Run:  ./build/examples/predictive_autoscaling
#include <iostream>

#include "core/autoscaler.hpp"
#include "core/predictor.hpp"
#include "testbed/c3.hpp"
#include "workload/bigflows.hpp"
#include "workload/runner.hpp"

int main() {
    using namespace tedge;

    testbed::C3Options options;
    options.with_docker = false; // Kubernetes: multi-replica support
    options.controller.flow_memory.idle_timeout = sim::seconds(45);
    options.controller.scale_down_idle = false; // the autoscaler owns scaling
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;

    // Eight copies of the nginx service under distinct cloud addresses.
    const auto& nginx = testbed::service_by_key("nginx");
    std::vector<net::ServiceAddress> addresses;
    for (std::uint32_t i = 0; i < 8; ++i) {
        net::ServiceAddress address{
            net::Ipv4{static_cast<std::uint32_t>(net::Ipv4{203, 0, 123, 10}.value() + i)},
            nginx.address.port};
        platform.register_service(address, nginx.yaml);
        addresses.push_back(address);
    }

    core::PredictorConfig predictor_config;
    predictor_config.period = sim::seconds(10);
    predictor_config.top_k = 3;
    core::PredictiveDeployer predictor(
        platform.simulation(), platform.deployment_engine(), *testbed->k8s,
        platform.service_registry(), predictor_config);

    core::AutoscalerConfig autoscaler_config;
    autoscaler_config.period = sim::seconds(15);
    autoscaler_config.flows_per_replica = 6;
    autoscaler_config.max_replicas = 3;
    core::ReplicaAutoscaler autoscaler(
        platform.simulation(), platform.deployment_engine(), *testbed->k8s,
        platform.controller().flow_memory(), platform.service_registry(),
        autoscaler_config);

    // A five-minute trace; the predictor observes every arrival.
    workload::BigFlowsOptions trace_options;
    trace_options.services = 8;
    trace_options.requests = 700;
    trace_options.horizon = sim::seconds(300);
    trace_options.clients = 20;
    trace_options.min_requests = 20;
    trace_options.seed = 7;
    const auto trace = workload::synthesize_bigflows(trace_options);
    for (const auto& event : trace.events()) {
        platform.simulation().schedule_at(
            platform.simulation().now() + event.at,
            [&predictor, &addresses, event] {
                predictor.observe(addresses[event.service]);
            });
    }

    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {nginx.request_size};
    auto& metrics = runner.replay(trace, replay);

    sim::SampleSet all;
    std::size_t cold_hits = 0;
    for (const auto& record : metrics.records()) {
        if (!record.ok) continue;
        all.add_time(record.time_total);
        if (record.time_total > sim::milliseconds(100)) ++cold_hits;
    }
    std::cout << "requests:          " << metrics.count() << "\n"
              << "median latency:    " << all.median() << " ms\n"
              << "p95 latency:       " << all.p95() << " ms\n"
              << "cold hits:         " << cold_hits
              << " (requests that waited on a deployment)\n"
              << "pre-deployments:   " << predictor.deploys_triggered() << "\n"
              << "autoscaler ups:    " << autoscaler.scale_ups()
              << "  downs: " << autoscaler.scale_downs() << "\n";

    std::cout << "\nreplicas at the end of the trace:\n";
    for (std::uint32_t i = 0; i < addresses.size(); ++i) {
        const auto* annotated = platform.service_registry().lookup(addresses[i]);
        std::cout << "  svc" << i << ": "
                  << autoscaler.current_replicas(annotated->spec.name)
                  << " (score " << predictor.score(annotated->spec.name) << ")\n";
    }
    return 0;
}
