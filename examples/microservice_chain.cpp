// Multi-container edge service (the paper's Nginx+Py): an nginx web server
// plus a Python sidecar that rewrites index.html once per second through a
// shared host volume. Demonstrates:
//   - the automatic annotation of a developer-written two-container
//     Deployment (unique name, labels, replicas=0, generated Service),
//   - deployment to BOTH cluster types from the same definition, and
//   - the idle scale-down driven by FlowMemory expiry.
//
// Run:  ./build/examples/microservice_chain
#include <iostream>

#include "testbed/c3.hpp"
#include "yamlite/emitter.hpp"

int main() {
    using namespace tedge;

    testbed::C3Options options;
    options.controller.flow_memory.idle_timeout = sim::seconds(30);
    options.controller.flow_memory.scan_period = sim::seconds(5);
    options.controller.dispatcher.switch_idle_timeout = sim::seconds(10);
    options.controller.scale_down_idle = true;  // tear idle services down
    auto testbed = build_c3(options);
    auto& platform = testbed->platform;

    const auto& nginx_py = testbed::service_by_key("nginx_py");
    const auto& annotated =
        platform.register_service(nginx_py.address, nginx_py.yaml);

    std::cout << "--- developer wrote ------------------------------------\n"
              << nginx_py.yaml
              << "--- annotator produced ----------------------------------\n"
              << annotated.yaml() << "\n";
    std::cout << "service name: " << annotated.spec.name << "\n"
              << "containers:   " << annotated.spec.containers.size()
              << " (nginx publishes port, the Python sidecar only writes)\n"
              << "volumes:      "
              << annotated.spec.containers[0].volumes.size() +
                     annotated.spec.containers[1].volumes.size()
              << " host mounts shared between the two containers\n\n";

    // A burst of requests, then silence -- watch the scale-down.
    for (int i = 0; i < 5; ++i) {
        platform.simulation().schedule(sim::seconds(1 + i), [&, i] {
            platform.http_request(testbed->clients[static_cast<std::size_t>(i) %
                                                   testbed->clients.size()],
                                  nginx_py.address, 120,
                                  [&, i](const net::HttpResult& r) {
                std::cout << "t=" << platform.simulation().now().str()
                          << " request " << i + 1 << ": "
                          << (r.ok ? "OK" : r.error) << " in "
                          << r.time_total.str() << "\n";
            });
        });
    }
    platform.simulation().run_until(sim::seconds(120));

    std::cout << "\nafter 30 s of silence the memorized flows expired and the "
                 "controller scaled the idle service down:\n"
              << "  idle scale-downs: " << platform.controller().idle_scale_downs()
              << "\n  running instances now: "
              << platform.clusters().front()->ready_instances(annotated.spec.name).size()
              << "\n";

    // One more request: the service is brought back on demand.
    bool done = false;
    platform.http_request(testbed->clients[0], nginx_py.address, 120,
                          [&](const net::HttpResult& r) {
                              std::cout << "\nrevival request: "
                                        << (r.ok ? "OK" : r.error) << " in "
                                        << r.time_total.str()
                                        << " (scale-up again, image cached)\n";
                              done = true;
                          });
    platform.simulation().run_until(platform.simulation().now() + sim::seconds(30));
    return done ? 0 : 1;
}
